// Executor: end-to-end elastic execution of a planned experiment (paper
// section 5).
//
// Drives the discrete-event runtime: samples trial configurations from the
// search space, walks the specification stage by stage following the
// allocation plan — scaling the cluster through the cluster manager,
// placing worker gangs through the placement controller, running trial
// iterations (with straggler noise from the synthetic trainer), queueing
// trials when the allocation is smaller than the stage, ranking trials at
// each SYNC barrier and terminating the losers, and checkpoint/restoring
// survivors across stage migrations. Produces the "real" columns of
// Table 2: realized JCT, realized cost (from the provider's billing
// ledger), and the accuracy of the winning configuration.

#ifndef SRC_EXECUTOR_EXECUTOR_H_
#define SRC_EXECUTOR_EXECUTOR_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/cloud/simulated_cloud.h"
#include "src/executor/checkpoint_store.h"
#include "src/executor/cluster_manager.h"
#include "src/executor/scheduler.h"
#include "src/executor/trace.h"
#include "src/executor/trial.h"
#include "src/placement/controller.h"
#include "src/planner/plan.h"
#include "src/spec/experiment_spec.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"

namespace rubberband {

struct ExecutorOptions {
  uint64_t seed = 0;
  // Table 1 ablation: kScatter disables locality-aware placement.
  PlacementStrategy placement = PlacementStrategy::kPacked;
  // Collect per-trial training throughput samples (Table 1's metric).
  bool record_throughput = false;
  // HyperSched-style policy (paper sections 2.1/3.2): when a trial finishes
  // its stage work early, immediately reallocate the freed GPUs to the
  // trials still running — each survivor is checkpointed, its gang
  // destroyed, and a larger gang created (paying startup again). The paper
  // argues this is worse than deprovisioning: sub-linear scaling means the
  // extra GPUs add little throughput while the instances keep billing.
  bool reallocate_freed_resources = false;
};

struct StageLogEntry {
  int stage = 0;
  int num_trials = 0;
  int gpus = 0;
  int gpus_per_trial = 0;
  int instances = 0;
  int64_t start_cum_iters = 0;  // "epoch range" bounds, as in Table 3
  int64_t end_cum_iters = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
};

struct ExecutionReport {
  Seconds jct = 0.0;
  CostBreakdown cost;
  double best_accuracy = 0.0;
  HyperparameterConfig best_config;
  std::vector<StageLogEntry> stage_log;
  std::vector<double> trial_throughputs;  // samples/second, per trial-stage
  // Spot-market statistics (zero on on-demand runs).
  int preemptions = 0;
  int trial_restarts = 0;
  // Busy GPU-seconds over provisioned GPU-seconds: the utilization the
  // paper's whole argument is about (elastic plans waste less).
  double realized_utilization = 0.0;
  // Checkpoint-store traffic (saves at stage boundaries, fetches on every
  // gang (re)start).
  int64_t checkpoint_saves = 0;
  int64_t checkpoint_fetches = 0;
  double checkpoint_gb_moved = 0.0;
  ExecutionTrace trace;
};

// Shared-cluster execution context: lets many executors (one per tuning
// job) run concurrently on one discrete-event timeline, drawing instances
// from one provider — the multi-tenant service substrate. The caller (the
// tuning service) owns the simulation, the billing account, and the
// instance source (typically a WarmPool recycling instances across jobs),
// and is responsible for driving the event loop and routing spot
// preemptions to the executor that owns the instance.
struct SharedClusterContext {
  Simulation* sim = nullptr;
  SimulatedCloud* cloud = nullptr;
  InstanceSource* source = nullptr;
  // Fair-share arbiter hook: the job's current GPU cap, re-read at every
  // stage boundary. Null means uncapped.
  std::function<int()> gpu_cap;
};

class Executor {
 public:
  // Standalone: the executor owns a fresh simulation and cloud, runs the
  // plan to completion via Run().
  Executor(const ExperimentSpec& spec, const AllocationPlan& plan, const WorkloadSpec& workload,
           const CloudProfile& cloud_profile, const ExecutorOptions& options = {});

  // Shared: the executor joins an existing timeline and instance source.
  // Use Start(); the context owner drives the simulation.
  Executor(const ExperimentSpec& spec, const AllocationPlan& plan, const WorkloadSpec& workload,
           const SharedClusterContext& context, const ExecutorOptions& options = {});

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Runs the experiment to completion and reports. Call once (standalone
  // executors only).
  ExecutionReport Run();

  // Kicks the experiment off asynchronously; `on_done` fires (on the
  // simulation timeline) when the final stage's barrier completes. In
  // shared mode the per-job report prices only this job's attributed usage.
  void Start(std::function<void(const ExecutionReport&)> on_done);

  // Spot preemption entry point. Standalone executors wire this to the
  // provider themselves; a shared-cluster owner routes each preemption to
  // the executor holding the instance.
  void OnPreemption(InstanceId instance);

  // True while this job's cluster holds the instance (shared-mode
  // preemption routing).
  bool OwnsInstance(InstanceId instance) const;

  bool finished() const { return finished_; }

 private:
  void StartStage(int stage);
  void BeginTraining(int stage);
  void StartTrialOnStage(TrialId id, int gpus);
  void ScheduleNextIteration(TrialId id);
  void OnTrialStageDone(TrialId id);
  void Sync(int stage);
  void Finish(int final_stage);
  void TryRestartPending();
  void ReallocateFreedResources();
  // The stage's planned allocation clamped to the fair-share cap (snapshot
  // taken at the stage boundary, the paper's natural reallocation point).
  int EffectiveStageGpus(int stage) const;
  int DesiredInstances() const;
  // Billing attribution: busy GPU-seconds to both the account-level meter
  // and this job's own meter.
  void RecordUsage(int gpus, Seconds duration);
  void NoteAcquired(InstanceId id);
  void NoteReleased(InstanceId id);

  ExperimentSpec spec_;
  AllocationPlan plan_;
  WorkloadSpec workload_;
  ExecutorOptions options_;

  // Standalone mode owns its runtime; shared mode borrows the context's.
  std::unique_ptr<Simulation> owned_sim_;
  std::unique_ptr<SimulatedCloud> owned_cloud_;
  Simulation& sim_;
  SimulatedCloud& cloud_;
  const bool shared_;
  std::function<int()> gpu_cap_;
  std::function<void(const ExecutionReport&)> on_done_;
  // This job's slice of the (possibly shared) billing account: instance
  // time from acquisition to release and busy GPU-seconds. Per-instance
  // init time and acquisition minimums stay on the account-level ledger.
  BillingMeter job_meter_;
  std::map<InstanceId, Seconds> acquired_at_;

  ClusterManager manager_;
  PlacementController placement_;
  CheckpointStore checkpoint_store_;

  std::deque<Trial> trials_;  // indexed by TrialId
  std::vector<TrialId> survivors_;
  std::deque<TrialId> queued_;
  std::map<TrialId, int> allocations_;
  std::map<TrialId, Seconds> busy_start_;
  // Bumped every time a trial's worker gang is (re)created; in-flight
  // iteration events from a destroyed gang check it and become no-ops.
  std::map<TrialId, int> generation_;
  std::deque<TrialId> pending_restart_;
  std::vector<InstanceId> nodes_in_controller_;

  int current_stage_ = -1;
  int stage_gpus_ = 0;  // effective (cap-clamped) allocation of the stage
  int gpus_per_trial_ = 1;
  int completed_in_stage_ = 0;
  bool finished_ = false;
  ExecutionReport report_;
};

// Convenience wrapper: plan is executed on a fresh simulated cloud built
// from `cloud_profile`.
ExecutionReport ExecutePlan(const ExperimentSpec& spec, const AllocationPlan& plan,
                            const WorkloadSpec& workload, const CloudProfile& cloud_profile,
                            const ExecutorOptions& options = {});

}  // namespace rubberband

#endif  // SRC_EXECUTOR_EXECUTOR_H_
