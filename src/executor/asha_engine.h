// Compiled-ASHA execution engine: asynchronous successive halving as rung
// events on the DES kernel, integrated with the planner/executor/service
// stack (unlike the deprecated src/executor/asha.cc side-car, which owns a
// private simulation and never flows through either).
//
// A fixed pool of worker gangs loops with no barriers: each freed worker
// takes the highest-rung promotable result (a trial whose accuracy placed
// in the top 1/eta of its rung) or samples a new configuration at rung 0.
// Two operating modes:
//   * bounded (AshaPlan::num_trials > 0) — the compiled-plan mode: sampling
//     stops at the trial budget and the run drains when no promotion is
//     outstanding, so an ASHA job terminates like any staged job and can
//     carry a deadline through admission control.
//   * time-limited (num_trials == 0, AshaEngineOptions::time_limit > 0) —
//     the legacy baseline mode, event-for-event identical to RunAsha()
//     (same RNG streams, same worker start, same promotion scan order);
//     Compile.AshaOracleParity holds the two to identical promotion logs.
//
// Like Executor, the engine runs standalone (owns its simulation + cloud)
// or shared (joins a SharedClusterContext: the service's timeline, billing
// account, and warm pool), and reports through the same ExecutionReport so
// the tuning service admits ASHA jobs next to staged ones. Instance loss
// on a shared cluster is replacement-only: in-flight rung runs carry their
// own state, so a lost instance costs a replacement request, not rework.

#ifndef SRC_EXECUTOR_ASHA_ENGINE_H_
#define SRC_EXECUTOR_ASHA_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/executor/asha.h"
#include "src/executor/executor.h"
#include "src/spec/compile.h"

namespace rubberband {

struct AshaEngineOptions {
  int num_workers = 8;      // concurrent worker gangs (fixed pool)
  Seconds time_limit = 0.0; // > 0: stop dispatching at start + limit
  uint64_t seed = 0;
  bool observe = false;     // emit the stage-total timeline span
};

class AshaEngine {
 public:
  // Standalone: owns a fresh simulation and cloud; use Run().
  AshaEngine(const AshaPlan& plan, const WorkloadSpec& workload,
             const CloudProfile& cloud_profile, const AshaEngineOptions& options = {});

  // Shared: joins an existing timeline and instance source; use Start()
  // and let the context owner drive the simulation.
  AshaEngine(const AshaPlan& plan, const WorkloadSpec& workload,
             const SharedClusterContext& context, const AshaEngineOptions& options = {});

  AshaEngine(const AshaEngine&) = delete;
  AshaEngine& operator=(const AshaEngine&) = delete;

  // Runs to completion and reports (standalone only). Call once.
  ExecutionReport Run();

  // Kicks the run off asynchronously; `on_done` fires on the simulation
  // timeline when the pool drains (bounded mode) or retires (time limit).
  void Start(std::function<void(const ExecutionReport&)> on_done);

  // Shared-cluster instance-loss routing (replacement-only recovery).
  void OnPreemption(InstanceId instance);
  void OnCrash(InstanceId instance);
  void OnPreemptionWarning(InstanceId instance) { (void)instance; }
  bool OwnsInstance(InstanceId instance) const;

  bool finished() const { return finished_; }
  bool Quiescent() const { return finished_ && pending_slots_ == 0; }

  // Oracle-parity introspection (valid once finished).
  const std::vector<AshaPromotion>& promotions() const { return promotions_; }
  const std::vector<AshaRungStats>& rung_stats() const { return rung_stats_; }
  int configurations_sampled() const { return configurations_sampled_; }
  int64_t best_config_cum_iters() const { return best_config_cum_iters_; }

 private:
  struct RungEntry {
    double accuracy = 0.0;
    int trial = -1;
    bool promoted = false;
  };
  struct WorkItem {
    int trial = -1;
    int rung = 0;
  };

  void Provision();
  void StartWorkers(int count);
  // ASHA's get_job: highest-rung promotable first, then a fresh sample
  // while the budget allows; false when the worker should idle.
  bool NextJob(WorkItem* out);
  std::optional<int> FindPromotable(int rung);
  void OnWorkerFree();
  void Dispatch(const WorkItem& job);
  void OnRunComplete(const WorkItem& job, int64_t iters, Seconds duration);
  void MaybeFinish();
  void FinishRun();
  void RecordUsage(int gpus, Seconds duration);

  AshaPlan plan_;
  WorkloadSpec workload_;
  AshaEngineOptions options_;

  std::unique_ptr<Simulation> owned_sim_;
  std::unique_ptr<SimulatedCloud> owned_cloud_;
  Simulation& sim_;
  SimulatedCloud& cloud_;
  InstanceSource* source_;  // shared mode; null standalone
  const bool shared_;
  std::function<void(const ExecutionReport&)> on_done_;

  Rng config_rng_;
  SearchSpace space_;
  std::deque<SyntheticTrainer> trials_;
  std::vector<std::vector<RungEntry>> rungs_;
  std::vector<AshaRungStats> rung_stats_;
  std::vector<AshaPromotion> promotions_;
  int configurations_sampled_ = 0;
  double best_accuracy_ = 0.0;
  HyperparameterConfig best_config_;
  int64_t best_config_cum_iters_ = 0;

  // This job's attributed slice of the (possibly shared) billing account.
  BillingMeter job_meter_;
  std::map<InstanceId, Seconds> acquired_at_;
  std::set<InstanceId> owned_instances_;
  int requested_slots_ = 0;
  int resolved_slots_ = 0;
  int pending_slots_ = 0;  // in-flight provisioning callbacks

  // Pool accounting: in_flight_ + idle_workers_ + retired_workers_ equals
  // the started worker count once the pool is up.
  int workers_started_ = 0;
  int in_flight_ = 0;
  int idle_workers_ = 0;
  int retired_workers_ = 0;
  bool started_ = false;
  bool finished_ = false;

  Seconds start_ = 0.0;
  ExecutionReport report_;
  MetricsRegistry metrics_;
  Timeline timeline_;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_ASHA_ENGINE_H_
