// Standalone execution of a compiled experiment: every unit runs on its own
// fresh simulated cloud (brackets are concurrent sub-DAGs of one job, so
// the experiment's JCT is the slowest unit's and its cost the sum), and an
// ASHA plan runs on the engine with the pool the planner sized. The
// multi-tenant path is TuningService::SubmitExperiment instead.

#ifndef SRC_EXECUTOR_RUN_COMPILED_H_
#define SRC_EXECUTOR_RUN_COMPILED_H_

#include <vector>

#include "src/executor/asha_engine.h"
#include "src/executor/executor.h"
#include "src/planner/compiled.h"

namespace rubberband {

struct CompiledExecutionReport {
  std::vector<ExecutionReport> units;  // unit order
  Seconds jct = 0.0;  // slowest unit (units execute concurrently)
  CostBreakdown cost;  // summed across units
  double best_accuracy = 0.0;
  HyperparameterConfig best_config;
};

// Runs every unit of `compiled` under `planned`. Unit 0 executes with the
// caller's seed (compiled-SHA stays bit-identical to the legacy path);
// later units fork deterministic per-unit seeds so brackets draw distinct
// configuration streams.
CompiledExecutionReport ExecuteCompiled(const CompiledPlan& compiled,
                                        const CompiledPlannedExperiment& planned,
                                        const WorkloadSpec& workload,
                                        const CloudProfile& cloud_profile,
                                        const ExecutorOptions& base_options = {});

}  // namespace rubberband

#endif  // SRC_EXECUTOR_RUN_COMPILED_H_
