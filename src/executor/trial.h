// Trial life-cycle (paper section 5, "Trial life-cycle").
//
// A trial is one hyperparameter configuration's training run: a gang of
// workers driven through iterations by the scheduler, checkpointable
// between iterations so it can be paused, migrated to a different worker
// gang (resize), resumed or terminated. The synthetic trainer stands in for
// the PyTorch DDP model replicas.

#ifndef SRC_EXECUTOR_TRIAL_H_
#define SRC_EXECUTOR_TRIAL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/trainer/synthetic_trainer.h"

namespace rubberband {

enum class TrialState { kPending, kRunning, kPaused, kCompleted, kTerminated };

std::string ToString(TrialState state);

class Trial {
 public:
  Trial(int id, const WorkloadSpec& workload, const HyperparameterConfig& config, uint64_t seed)
      : id_(id), trainer_(workload, config, seed) {}

  int id() const { return id_; }
  const HyperparameterConfig& config() const { return trainer_.config(); }
  SyntheticTrainer& trainer() { return trainer_; }
  const SyntheticTrainer& trainer() const { return trainer_; }

  TrialState state() const { return state_; }
  void set_state(TrialState state) { state_ = state; }

  // Iterations left in the current stage's work assignment.
  int64_t remaining_iters() const { return remaining_iters_; }
  void AssignStageWork(int64_t iters) { remaining_iters_ = iters; }
  void CompleteIteration() { --remaining_iters_; }

  // Checkpoint/restore across migrations. Restoring requires a prior
  // checkpoint (workers are destroyed and recreated between stages).
  void SaveCheckpoint() { checkpoint_ = trainer_.Checkpoint(); }
  void RestoreFromCheckpoint();
  bool has_checkpoint() const { return checkpoint_.has_value(); }

  double last_accuracy() const { return last_accuracy_; }
  void set_last_accuracy(double accuracy) { last_accuracy_ = accuracy; }

 private:
  int id_;
  SyntheticTrainer trainer_;
  TrialState state_ = TrialState::kPending;
  int64_t remaining_iters_ = 0;
  std::optional<TrainerCheckpoint> checkpoint_;
  double last_accuracy_ = 0.0;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_TRIAL_H_
