#include "src/executor/trial.h"

#include <stdexcept>

namespace rubberband {

std::string ToString(TrialState state) {
  switch (state) {
    case TrialState::kPending:
      return "PENDING";
    case TrialState::kRunning:
      return "RUNNING";
    case TrialState::kPaused:
      return "PAUSED";
    case TrialState::kCompleted:
      return "COMPLETED";
    case TrialState::kTerminated:
      return "TERMINATED";
  }
  return "UNKNOWN";
}

void Trial::RestoreFromCheckpoint() {
  if (!checkpoint_.has_value()) {
    throw std::logic_error("trial has no checkpoint to restore from");
  }
  trainer_.Restore(*checkpoint_);
}

}  // namespace rubberband
