#include "src/executor/scheduler.h"

#include <stdexcept>

namespace rubberband {

StageSchedule BuildStageSchedule(const std::vector<TrialId>& trials, int gpus) {
  if (trials.empty() || gpus < 1) {
    throw std::invalid_argument("schedule needs trials and at least one GPU");
  }
  StageSchedule schedule;
  const int n = static_cast<int>(trials.size());
  if (gpus >= n) {
    schedule.gpus_per_trial = gpus / n;
    schedule.running = trials;
  } else {
    schedule.gpus_per_trial = 1;
    schedule.running.assign(trials.begin(), trials.begin() + gpus);
    schedule.queued.assign(trials.begin() + gpus, trials.end());
  }
  return schedule;
}

}  // namespace rubberband
