// Execution trace: a structured event log of everything the executor did —
// cluster scaling, trial life-cycle transitions, synchronization barriers,
// preemptions. Exportable as CSV for offline analysis (the moral
// equivalent of the timeline instrumentation the paper's evaluation is
// built on).

#ifndef SRC_EXECUTOR_TRACE_H_
#define SRC_EXECUTOR_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace rubberband {

enum class TraceEventType {
  kStageStart,
  kInstanceReady,
  kInstanceReleased,
  kTrialStart,
  kTrialComplete,
  kTrialTerminated,
  kSync,
  kPreemption,
  kTrialRestart,
  // Fault/recovery events (the self-healing control plane).
  kInstanceCrash,      // hardware crash on a ready instance
  kProvisionFailure,   // a provisioning slot failed (rejection or init death)
  kProvisionRetry,     // the failed slot was re-requested after backoff
  kProvisionGiveUp,    // retries exhausted; the slot was abandoned
  kCheckpointRetry,    // a checkpoint fetch failed and was recovered
  kStageDegraded,      // a stage proceeded with fewer GPUs than planned
  kReplan,             // remaining stages re-planned after slack burned
  // Gray-failure events (persistent-straggler detection/mitigation).
  kStragglerDetected,       // detector flagged an instance as persistently slow
  kStragglerQuarantined,    // flagged instance checkpointed out and discarded
  kStragglerFalsePositive,  // flagged instance was in fact healthy
  // Spot-market events (price-trace survival).
  kSpotPriceChange,     // the spot price trace stepped (multiplier in `instance`, in basis points)
  kPreemptionWarning,   // provider announced a reclamation; eager checkpoint taken
  kMarketFallback,      // capacity rejected/storming: switched markets
};

// Number of TraceEventType values. Keep in sync with the enum above: the
// trace test asserts ToString(kNumTraceEventTypes) == "UNKNOWN", so adding
// an event kind without bumping this (and thereby enrolling the new kind in
// the exhaustive round-trip test) fails the build's test tier.
inline constexpr int kNumTraceEventTypes =
    static_cast<int>(TraceEventType::kMarketFallback) + 1;

std::string ToString(TraceEventType type);

// Inverse of ToString; throws std::invalid_argument on an unknown name.
TraceEventType TraceEventTypeFromString(const std::string& name);

struct TraceEvent {
  Seconds time = 0.0;
  TraceEventType type = TraceEventType::kStageStart;
  int stage = -1;
  int trial = -1;     // -1 when not trial-scoped
  int64_t instance = -1;  // -1 when not instance-scoped
};

class ExecutionTrace {
 public:
  void Record(Seconds time, TraceEventType type, int stage, int trial = -1,
              int64_t instance = -1) {
    events_.push_back(TraceEvent{time, type, stage, trial, instance});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Events of one type, in order.
  std::vector<TraceEvent> OfType(TraceEventType type) const;

  // "time,event,stage,trial,instance" rows with a header line.
  std::string ToCsv() const;

  // Parses ToCsv output back into a trace (offline-analysis round trip).
  // A missing or wrong header always throws std::invalid_argument. Row
  // handling depends on `parse_errors`: when null (the default), any
  // malformed row throws; when non-null, malformed rows are skipped and
  // counted into *parse_errors (set to 0 first), so a partially corrupted
  // log still yields every salvageable event — trace2chrome surfaces the
  // count instead of dying on row one.
  static ExecutionTrace FromCsv(const std::string& csv, int* parse_errors = nullptr);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_TRACE_H_
