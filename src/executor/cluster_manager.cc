#include "src/executor/cluster_manager.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rubberband {

void ClusterManager::OnInstanceReady(InstanceId id) {
  ready_.push_back(id);
  if (waiter_ && num_ready() >= waiting_for_) {
    auto callback = std::move(waiter_);
    waiter_ = nullptr;
    callback();
  }
}

void ClusterManager::Request(int count, std::function<void(InstanceId)> on_each_ready) {
  inflight_ += count;
  source_.RequestInstances(count, dataset_gb_,
                           [this, on_each_ready = std::move(on_each_ready)](InstanceId id) {
                             --inflight_;
                             on_each_ready(id);
                           });
}

void ClusterManager::EnsureInstances(int target, std::function<void()> on_ready) {
  if (waiter_) {
    throw std::logic_error("ClusterManager already has an outstanding scale request");
  }
  if (num_ready() >= target) {
    on_ready();
    return;
  }
  waiter_ = std::move(on_ready);
  waiting_for_ = target;
  const int missing = target - num_ready() - inflight_;
  if (missing > 0) {
    Request(missing, [this](InstanceId id) { OnInstanceReady(id); });
  }
}

void ClusterManager::RequestExtra(int count, std::function<void(InstanceId)> on_ready) {
  Request(count, [this, on_ready = std::move(on_ready)](InstanceId id) {
    OnInstanceReady(id);
    on_ready(id);
  });
}

void ClusterManager::OnInstancePreempted(InstanceId id) {
  auto it = std::find(ready_.begin(), ready_.end(), id);
  if (it == ready_.end()) {
    throw std::logic_error("preemption reported for an instance the manager does not hold");
  }
  ready_.erase(it);
}

void ClusterManager::Deprovision(const std::vector<InstanceId>& ids) {
  for (InstanceId id : ids) {
    auto it = std::find(ready_.begin(), ready_.end(), id);
    if (it == ready_.end()) {
      throw std::logic_error("deprovisioning an instance the manager does not hold");
    }
    ready_.erase(it);
    source_.ReleaseInstance(id);
  }
}

}  // namespace rubberband
