#include "src/executor/cluster_manager.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rubberband {

void ClusterManager::OnInstanceReady(InstanceId id) {
  if (quarantined_.count(id) > 0) {
    // A recycling source handed back blacklisted hardware: throw it away
    // and keep the slot open so the waiter's arithmetic still closes.
    source_.DiscardInstance(id);
    Request(1, [this](InstanceId replacement) { OnInstanceReady(replacement); });
    return;
  }
  ready_.push_back(id);
  if (waiter_ && num_ready() >= waiting_for_) {
    auto callback = std::move(waiter_);
    waiter_ = nullptr;
    callback();
  }
}

Seconds ClusterManager::Backoff(int attempt) {
  Seconds delay = retry_.base_backoff_s;
  for (int k = 0; k < attempt && delay < retry_.max_backoff_s; ++k) {
    delay *= 2.0;
  }
  delay = std::min(delay, retry_.max_backoff_s);
  if (retry_.jitter > 0.0) {
    delay *= 1.0 + backoff_rng_.Uniform(-retry_.jitter, retry_.jitter);
  }
  return delay;
}

void ClusterManager::RequestSlots(int count, int attempt,
                                  std::function<void(InstanceId)> on_each_ready) {
  inflight_ += count;
  source_.RequestInstances(
      count, dataset_gb_, market_,
      [this, on_each_ready](InstanceId id) {
        --inflight_;
        on_each_ready(id);
      },
      [this, attempt, on_each_ready]() {
        --inflight_;
        ++provision_failures_;
        const bool will_retry = attempt + 1 < retry_.max_attempts;
        if (fault_observer_) {
          fault_observer_(will_retry);
        }
        if (!will_retry) {
          ++abandoned_;
          return;
        }
        ++retries_;
        ++backoff_pending_;
        sim_.ScheduleIn(Backoff(attempt), [this, attempt, on_each_ready]() {
          --backoff_pending_;
          RequestSlots(1, attempt + 1, on_each_ready);
        });
      });
}

void ClusterManager::Request(int count, std::function<void(InstanceId)> on_each_ready) {
  RequestSlots(count, 0, std::move(on_each_ready));
}

void ClusterManager::EnsureInstances(int target, std::function<void()> on_ready) {
  if (waiter_) {
    throw std::logic_error("ClusterManager already has an outstanding scale request");
  }
  if (num_ready() >= target) {
    on_ready();
    return;
  }
  waiter_ = std::move(on_ready);
  waiting_for_ = target;
  const int missing = target - num_ready() - num_inflight();
  if (missing > 0) {
    Request(missing, [this](InstanceId id) { OnInstanceReady(id); });
  }
}

void ClusterManager::ReduceWaitTarget(int target) {
  if (!waiter_) {
    return;
  }
  waiting_for_ = std::min(waiting_for_, target);
  if (num_ready() >= waiting_for_) {
    auto callback = std::move(waiter_);
    waiter_ = nullptr;
    callback();
  }
}

void ClusterManager::RequestExtra(int count, std::function<void(InstanceId)> on_ready) {
  Request(count, [this, on_ready = std::move(on_ready)](InstanceId id) {
    OnInstanceReady(id);
    on_ready(id);
  });
}

void ClusterManager::OnInstanceLost(InstanceId id) {
  auto it = std::find(ready_.begin(), ready_.end(), id);
  if (it == ready_.end()) {
    throw std::logic_error("instance loss reported for an instance the manager does not hold");
  }
  ready_.erase(it);
  // Self-heal the outstanding scale request: capacity lost mid-scale-up is
  // re-requested here, otherwise the one-shot `missing` computed by
  // EnsureInstances undercounts and the waiter hangs forever.
  if (waiter_) {
    const int missing = waiting_for_ - num_ready() - num_inflight();
    if (missing > 0) {
      Request(missing, [this](InstanceId ready_id) { OnInstanceReady(ready_id); });
    }
  }
}

void ClusterManager::Quarantine(InstanceId id) {
  auto it = std::find(ready_.begin(), ready_.end(), id);
  if (it == ready_.end()) {
    throw std::logic_error("quarantining an instance the manager does not hold");
  }
  ready_.erase(it);
  quarantined_.insert(id);
  source_.DiscardInstance(id);
}

void ClusterManager::Deprovision(const std::vector<InstanceId>& ids) {
  for (InstanceId id : ids) {
    auto it = std::find(ready_.begin(), ready_.end(), id);
    if (it == ready_.end()) {
      throw std::logic_error("deprovisioning an instance the manager does not hold");
    }
    ready_.erase(it);
    source_.ReleaseInstance(id);
  }
}

}  // namespace rubberband
