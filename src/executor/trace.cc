#include "src/executor/trace.h"

#include <cstdio>
#include <sstream>

namespace rubberband {

std::string ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStageStart:
      return "STAGE_START";
    case TraceEventType::kInstanceReady:
      return "INSTANCE_READY";
    case TraceEventType::kInstanceReleased:
      return "INSTANCE_RELEASED";
    case TraceEventType::kTrialStart:
      return "TRIAL_START";
    case TraceEventType::kTrialComplete:
      return "TRIAL_COMPLETE";
    case TraceEventType::kTrialTerminated:
      return "TRIAL_TERMINATED";
    case TraceEventType::kSync:
      return "SYNC";
    case TraceEventType::kPreemption:
      return "PREEMPTION";
    case TraceEventType::kTrialRestart:
      return "TRIAL_RESTART";
  }
  return "UNKNOWN";
}

std::vector<TraceEvent> ExecutionTrace::OfType(TraceEventType type) const {
  std::vector<TraceEvent> matching;
  for (const TraceEvent& event : events_) {
    if (event.type == type) {
      matching.push_back(event);
    }
  }
  return matching;
}

std::string ExecutionTrace::ToCsv() const {
  std::ostringstream os;
  os << "time_s,event,stage,trial,instance\n";
  char line[128];
  for (const TraceEvent& event : events_) {
    std::snprintf(line, sizeof(line), "%.3f,%s,%d,%d,%lld\n", event.time,
                  ToString(event.type).c_str(), event.stage, event.trial,
                  static_cast<long long>(event.instance));
    os << line;
  }
  return os.str();
}

}  // namespace rubberband
