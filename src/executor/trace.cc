#include "src/executor/trace.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rubberband {

std::string ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStageStart:
      return "STAGE_START";
    case TraceEventType::kInstanceReady:
      return "INSTANCE_READY";
    case TraceEventType::kInstanceReleased:
      return "INSTANCE_RELEASED";
    case TraceEventType::kTrialStart:
      return "TRIAL_START";
    case TraceEventType::kTrialComplete:
      return "TRIAL_COMPLETE";
    case TraceEventType::kTrialTerminated:
      return "TRIAL_TERMINATED";
    case TraceEventType::kSync:
      return "SYNC";
    case TraceEventType::kPreemption:
      return "PREEMPTION";
    case TraceEventType::kTrialRestart:
      return "TRIAL_RESTART";
    case TraceEventType::kInstanceCrash:
      return "INSTANCE_CRASH";
    case TraceEventType::kProvisionFailure:
      return "PROVISION_FAILURE";
    case TraceEventType::kProvisionRetry:
      return "PROVISION_RETRY";
    case TraceEventType::kProvisionGiveUp:
      return "PROVISION_GIVE_UP";
    case TraceEventType::kCheckpointRetry:
      return "CHECKPOINT_RETRY";
    case TraceEventType::kStageDegraded:
      return "STAGE_DEGRADED";
    case TraceEventType::kReplan:
      return "REPLAN";
    case TraceEventType::kStragglerDetected:
      return "STRAGGLER_DETECTED";
    case TraceEventType::kStragglerQuarantined:
      return "STRAGGLER_QUARANTINED";
    case TraceEventType::kStragglerFalsePositive:
      return "STRAGGLER_FALSE_POSITIVE";
    case TraceEventType::kSpotPriceChange:
      return "SPOT_PRICE_CHANGE";
    case TraceEventType::kPreemptionWarning:
      return "PREEMPTION_WARNING";
    case TraceEventType::kMarketFallback:
      return "MARKET_FALLBACK";
  }
  return "UNKNOWN";
}

TraceEventType TraceEventTypeFromString(const std::string& name) {
  // Spans every enum value by construction — no hand-maintained list to
  // fall out of sync when an event kind is added.
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    const auto type = static_cast<TraceEventType>(i);
    if (ToString(type) == name) {
      return type;
    }
  }
  throw std::invalid_argument("unknown trace event type '" + name + "'");
}

std::vector<TraceEvent> ExecutionTrace::OfType(TraceEventType type) const {
  std::vector<TraceEvent> matching;
  for (const TraceEvent& event : events_) {
    if (event.type == type) {
      matching.push_back(event);
    }
  }
  return matching;
}

std::string ExecutionTrace::ToCsv() const {
  std::ostringstream os;
  os << "time_s,event,stage,trial,instance\n";
  char line[128];
  for (const TraceEvent& event : events_) {
    std::snprintf(line, sizeof(line), "%.3f,%s,%d,%d,%lld\n", event.time,
                  ToString(event.type).c_str(), event.stage, event.trial,
                  static_cast<long long>(event.instance));
    os << line;
  }
  return os.str();
}

namespace {

// Strict full-token parses: std::stoi("12abc") silently truncates, which
// would let a garbled row round-trip as a different event.
double ParseFullDouble(const std::string& token) {
  size_t consumed = 0;
  const double value = std::stod(token, &consumed);
  if (consumed != token.size()) {
    throw std::invalid_argument("trailing characters in number '" + token + "'");
  }
  return value;
}

int64_t ParseFullInt(const std::string& token) {
  size_t consumed = 0;
  const int64_t value = std::stoll(token, &consumed);
  if (consumed != token.size()) {
    throw std::invalid_argument("trailing characters in integer '" + token + "'");
  }
  return value;
}

}  // namespace

ExecutionTrace ExecutionTrace::FromCsv(const std::string& csv, int* parse_errors) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line) || line != "time_s,event,stage,trial,instance") {
    throw std::invalid_argument("trace CSV is missing its header line");
  }
  if (parse_errors != nullptr) {
    *parse_errors = 0;
  }
  ExecutionTrace trace;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      std::istringstream row(line);
      std::string time_s, event, stage, trial, instance, extra;
      if (!std::getline(row, time_s, ',') || !std::getline(row, event, ',') ||
          !std::getline(row, stage, ',') || !std::getline(row, trial, ',') ||
          !std::getline(row, instance, ',') || std::getline(row, extra, ',')) {
        throw std::invalid_argument("wrong field count");
      }
      trace.Record(ParseFullDouble(time_s), TraceEventTypeFromString(event),
                   static_cast<int>(ParseFullInt(stage)), static_cast<int>(ParseFullInt(trial)),
                   ParseFullInt(instance));
    } catch (const std::exception&) {
      if (parse_errors == nullptr) {
        throw std::invalid_argument("malformed trace CSV row: " + line);
      }
      ++*parse_errors;  // tolerant mode: count and keep going
    }
  }
  return trace;
}

}  // namespace rubberband
