#include "src/executor/asha_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rubberband {

AshaEngine::AshaEngine(const AshaPlan& plan, const WorkloadSpec& workload,
                       const CloudProfile& cloud_profile, const AshaEngineOptions& options)
    : plan_(plan),
      workload_(workload),
      options_(options),
      owned_sim_(std::make_unique<Simulation>(options.seed)),
      owned_cloud_(std::make_unique<SimulatedCloud>(*owned_sim_, cloud_profile)),
      sim_(*owned_sim_),
      cloud_(*owned_cloud_),
      source_(nullptr),
      shared_(false),
      config_rng_(options.seed ^ 0xA5A5A5A5ULL) {
  if (plan_.rung_budgets.empty()) {
    throw std::invalid_argument("AshaPlan has no rungs");
  }
  rungs_.resize(plan_.rung_budgets.size());
  rung_stats_.resize(plan_.rung_budgets.size());
  space_ = SearchSpace(plan_.space);
}

AshaEngine::AshaEngine(const AshaPlan& plan, const WorkloadSpec& workload,
                       const SharedClusterContext& context, const AshaEngineOptions& options)
    : plan_(plan),
      workload_(workload),
      options_(options),
      sim_(*context.sim),
      cloud_(*context.cloud),
      source_(context.source),
      shared_(true),
      config_rng_(options.seed ^ 0xA5A5A5A5ULL) {
  if (plan_.rung_budgets.empty()) {
    throw std::invalid_argument("AshaPlan has no rungs");
  }
  rungs_.resize(plan_.rung_budgets.size());
  rung_stats_.resize(plan_.rung_budgets.size());
  space_ = SearchSpace(plan_.space);
}

ExecutionReport AshaEngine::Run() {
  if (shared_) {
    throw std::logic_error("Run() drives its own simulation; shared engines use Start()");
  }
  Start(nullptr);
  sim_.Run();
  if (!finished_) {
    throw std::logic_error("simulation drained without completing the ASHA run");
  }
  return std::move(report_);
}

void AshaEngine::Start(std::function<void(const ExecutionReport&)> on_done) {
  if (started_) {
    throw std::logic_error("AshaEngine may only be started once");
  }
  on_done_ = std::move(on_done);
  start_ = sim_.now();
  Provision();
}

void AshaEngine::Provision() {
  const int gpg = cloud_.profile().gpus_per_instance();
  const int total_gpus = options_.num_workers * plan_.gpus_per_trial;
  const int instances = (total_gpus + gpg - 1) / gpg;
  requested_slots_ = instances;
  pending_slots_ = instances;
  if (!shared_) {
    // Legacy-identical sequencing: request the pool, then start every
    // worker at the mean ready latency (ASHA assumes a fixed cluster that
    // exists for the whole run).
    cloud_.RequestInstances(instances, workload_.dataset.size_gb, [this](InstanceId id) {
      --pending_slots_;
      owned_instances_.insert(id);
      acquired_at_[id] = sim_.now();
    });
    sim_.ScheduleIn(cloud_.profile().provisioning.MeanReadyLatency() + 1e-9,
                    [this] { StartWorkers(options_.num_workers); });
    return;
  }
  // Shared cluster: draw from the service's instance source (typically the
  // warm pool, so slots may resolve instantly) and start the pool once
  // every slot settles, scaled down to whatever capacity arrived.
  source_->RequestInstances(
      instances, workload_.dataset.size_gb,
      [this](InstanceId id) {
        --pending_slots_;
        if (finished_) {
          source_->ReleaseInstance(id);  // late arrival after an empty run
          return;
        }
        owned_instances_.insert(id);
        acquired_at_[id] = sim_.now();
        if (++resolved_slots_ == requested_slots_) {
          const int gpg2 = cloud_.profile().gpus_per_instance();
          const int capacity = static_cast<int>(owned_instances_.size()) * gpg2;
          StartWorkers(std::min(options_.num_workers, capacity / plan_.gpus_per_trial));
        }
      },
      [this] {
        --pending_slots_;
        if (finished_) {
          return;
        }
        if (++resolved_slots_ == requested_slots_) {
          const int gpg2 = cloud_.profile().gpus_per_instance();
          const int capacity = static_cast<int>(owned_instances_.size()) * gpg2;
          StartWorkers(std::min(options_.num_workers, capacity / plan_.gpus_per_trial));
        }
      });
}

void AshaEngine::StartWorkers(int count) {
  started_ = true;
  workers_started_ = count;
  if (count < 1) {
    FinishRun();  // provisioning delivered nothing; settle an empty run
    return;
  }
  for (int w = 0; w < count; ++w) {
    OnWorkerFree();
  }
}

bool AshaEngine::NextJob(WorkItem* out) {
  for (int r = static_cast<int>(rungs_.size()) - 2; r >= 0; --r) {
    std::optional<int> promotable = FindPromotable(r);
    if (promotable.has_value()) {
      ++rung_stats_[static_cast<size_t>(r)].promoted;
      promotions_.push_back(AshaPromotion{r, *promotable});
      *out = WorkItem{*promotable, r + 1};
      return true;
    }
  }
  if (plan_.num_trials == 0 || configurations_sampled_ < plan_.num_trials) {
    const HyperparameterConfig config = space_.Sample(config_rng_);
    const int id = static_cast<int>(trials_.size());
    trials_.emplace_back(workload_, config,
                         options_.seed * 6364136223846793005ULL + static_cast<uint64_t>(id));
    ++configurations_sampled_;
    *out = WorkItem{id, 0};
    return true;
  }
  return false;
}

std::optional<int> AshaEngine::FindPromotable(int rung) {
  auto& entries = rungs_[static_cast<size_t>(rung)];
  const int top_k = static_cast<int>(entries.size()) / plan_.reduction_factor;
  if (top_k < 1) {
    return std::nullopt;
  }
  std::vector<RungEntry*> sorted;
  sorted.reserve(entries.size());
  for (RungEntry& entry : entries) {
    sorted.push_back(&entry);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const RungEntry* a, const RungEntry* b) { return a->accuracy > b->accuracy; });
  for (int i = 0; i < top_k; ++i) {
    if (!sorted[static_cast<size_t>(i)]->promoted) {
      sorted[static_cast<size_t>(i)]->promoted = true;
      return sorted[static_cast<size_t>(i)]->trial;
    }
  }
  return std::nullopt;
}

void AshaEngine::OnWorkerFree() {
  if (options_.time_limit > 0.0 && sim_.now() >= start_ + options_.time_limit) {
    ++retired_workers_;
    MaybeFinish();
    return;
  }
  WorkItem job;
  if (!NextJob(&job)) {
    ++idle_workers_;
    MaybeFinish();
    return;
  }
  Dispatch(job);
}

void AshaEngine::Dispatch(const WorkItem& job) {
  ++in_flight_;
  SyntheticTrainer& trainer = trials_[static_cast<size_t>(job.trial)];
  trainer.Configure(plan_.gpus_per_trial, /*colocated=*/true);
  const int64_t target = plan_.rung_budgets[static_cast<size_t>(job.rung)];
  const int64_t iters = target - trainer.cum_iters();
  Seconds duration = workload_.trial_startup_seconds;
  for (int64_t i = 0; i < iters; ++i) {
    duration += trainer.SampleIterLatency();
  }
  sim_.ScheduleIn(duration,
                  [this, job, iters, duration] { OnRunComplete(job, iters, duration); });
}

void AshaEngine::OnRunComplete(const WorkItem& job, int64_t iters, Seconds duration) {
  SyntheticTrainer& trainer = trials_[static_cast<size_t>(job.trial)];
  trainer.Advance(iters);
  const double accuracy = trainer.Evaluate();
  rungs_[static_cast<size_t>(job.rung)].push_back(RungEntry{accuracy, job.trial, false});
  ++rung_stats_[static_cast<size_t>(job.rung)].completed;
  RecordUsage(plan_.gpus_per_trial, duration);
  if (accuracy > best_accuracy_) {
    best_accuracy_ = accuracy;
    best_config_ = trainer.config();
    best_config_cum_iters_ = trainer.cum_iters();
  }
  --in_flight_;
  OnWorkerFree();  // the completing worker claims the next job first
  // This result may have unblocked a promotion an idle worker was waiting
  // for; wake as many as find work.
  while (idle_workers_ > 0 && !finished_) {
    WorkItem next;
    if (!NextJob(&next)) {
      break;
    }
    --idle_workers_;
    Dispatch(next);
  }
}

void AshaEngine::MaybeFinish() {
  if (!finished_ && started_ && in_flight_ == 0) {
    FinishRun();
  }
}

void AshaEngine::FinishRun() {
  finished_ = true;
  const Seconds now = sim_.now();
  report_.jct = now;
  const CloudProfile& profile = cloud_.profile();
  if (!shared_) {
    cloud_.TerminateAll();
    report_.cost = cloud_.Cost();
  } else {
    for (InstanceId id : owned_instances_) {
      auto it = acquired_at_.find(id);
      if (it != acquired_at_.end()) {
        job_meter_.RecordInstanceUsage(it->second, now, 1.0, false);
      }
      source_->ReleaseInstance(id);
    }
    owned_instances_.clear();
    acquired_at_.clear();
    const InstanceType billed_type = profile.pricing.billing == BillingModel::kPerFunction
                                         ? profile.BilledInstance()
                                         : profile.instance;
    report_.cost = job_meter_.Price(billed_type, profile.pricing);
  }
  report_.best_accuracy = best_accuracy_;
  report_.best_config = best_config_;
  // Busy GPU-seconds over provisioned GPU-seconds, from whichever meter
  // closed this job's billing intervals above.
  const BillingMeter& meter = shared_ ? job_meter_ : cloud_.meter();
  const double provisioned = meter.TotalInstanceSeconds() * profile.gpus_per_instance();
  report_.realized_utilization =
      provisioned > 0.0 ? meter.TotalGpuSecondsUsed() / provisioned : 0.0;

  // One stage-log row per rung (the async analogue of the stage table).
  int64_t previous_budget = 0;
  for (size_t r = 0; r < plan_.rung_budgets.size(); ++r) {
    StageLogEntry entry;
    entry.stage = static_cast<int>(r);
    entry.num_trials = rung_stats_[r].completed;
    entry.gpus = workers_started_ * plan_.gpus_per_trial;
    entry.gpus_per_trial = plan_.gpus_per_trial;
    entry.instances = requested_slots_;
    entry.start_cum_iters = previous_budget;
    entry.end_cum_iters = plan_.rung_budgets[r];
    entry.start = start_;
    entry.end = now;
    previous_budget = plan_.rung_budgets[r];
    report_.stage_log.push_back(entry);
  }

  MetricsScope executor_scope = metrics_.scope("executor");
  obs::Set(executor_scope.GetGauge("jct_seconds"), report_.jct);
  obs::Set(executor_scope.GetGauge("cost_dollars"), report_.cost.Total().dollars());
  obs::Set(executor_scope.GetGauge("best_accuracy"), report_.best_accuracy);
  MetricsScope asha_scope = metrics_.scope("asha");
  obs::Inc(asha_scope.GetCounter("configurations_sampled"), configurations_sampled_);
  obs::Inc(asha_scope.GetCounter("promotions"), static_cast<int64_t>(promotions_.size()));
  obs::Set(asha_scope.GetGauge("rungs"), static_cast<double>(plan_.rung_budgets.size()));
  report_.metrics = metrics_.Snapshot();
  if (!shared_) {
    report_.metrics.Merge(cloud_.metrics().Snapshot());
  }
  if (options_.observe) {
    // The whole run is one barrier-free phase; its span tiles [start, JCT].
    timeline_.Record(TimelineSpan{"stage-total", "executor", start_, now, 1, 0, -1, -1});
  }
  report_.timeline = std::move(timeline_);
  if (on_done_) {
    on_done_(report_);
  }
}

void AshaEngine::RecordUsage(int gpus, Seconds duration) {
  cloud_.RecordFunctionUsage(gpus, duration);
  job_meter_.RecordFunctionUsage(gpus, duration);
}

bool AshaEngine::OwnsInstance(InstanceId instance) const {
  return owned_instances_.count(instance) > 0;
}

void AshaEngine::OnPreemption(InstanceId instance) {
  if (owned_instances_.erase(instance) == 0) {
    return;
  }
  auto it = acquired_at_.find(instance);
  if (it != acquired_at_.end()) {
    job_meter_.RecordInstanceUsage(it->second, sim_.now(), 1.0, true);
    acquired_at_.erase(it);
  }
  ++report_.preemptions;
  if (!finished_ && source_ != nullptr) {
    // Replacement-only recovery: in-flight rung runs carry their own
    // trainer state, so the loss costs a provisioning round, not rework.
    ++pending_slots_;
    source_->RequestInstances(
        1, workload_.dataset.size_gb,
        [this](InstanceId id) {
          --pending_slots_;
          if (finished_) {
            source_->ReleaseInstance(id);
            return;
          }
          owned_instances_.insert(id);
          acquired_at_[id] = sim_.now();
        },
        [this] { --pending_slots_; });
  }
}

void AshaEngine::OnCrash(InstanceId instance) {
  if (owned_instances_.erase(instance) == 0) {
    return;
  }
  auto it = acquired_at_.find(instance);
  if (it != acquired_at_.end()) {
    job_meter_.RecordInstanceUsage(it->second, sim_.now(), 1.0, false);
    acquired_at_.erase(it);
  }
  ++report_.crashes;
  if (!finished_ && source_ != nullptr) {
    ++pending_slots_;
    source_->RequestInstances(
        1, workload_.dataset.size_gb,
        [this](InstanceId id) {
          --pending_slots_;
          if (finished_) {
            source_->ReleaseInstance(id);
            return;
          }
          owned_instances_.insert(id);
          acquired_at_[id] = sim_.now();
        },
        [this] { --pending_slots_; });
  }
}

}  // namespace rubberband
