#include "src/executor/run_compiled.h"

#include <algorithm>
#include <stdexcept>

namespace rubberband {

CompiledExecutionReport ExecuteCompiled(const CompiledPlan& compiled,
                                        const CompiledPlannedExperiment& planned,
                                        const WorkloadSpec& workload,
                                        const CloudProfile& cloud_profile,
                                        const ExecutorOptions& base_options) {
  if (compiled.units.size() != planned.units.size()) {
    throw std::invalid_argument("compiled plan and planned experiment disagree on unit count");
  }
  CompiledExecutionReport result;
  if (compiled.asha) {
    AshaEngineOptions engine_options;
    engine_options.num_workers = planned.asha_workers;
    engine_options.seed = base_options.seed;
    engine_options.observe = base_options.observe;
    AshaEngine engine(*compiled.asha, workload, cloud_profile, engine_options);
    result.units.push_back(engine.Run());
  } else {
    for (size_t i = 0; i < compiled.units.size(); ++i) {
      ExecutorOptions options = base_options;
      options.configs = compiled.units[i].configs;
      // Unit 0 keeps the caller's seed (SHA bit-identity); later brackets
      // fork their own deterministic streams, exactly as the tuning
      // service seeds sibling jobs.
      options.seed = base_options.seed + 1000003 * static_cast<uint64_t>(i);
      result.units.push_back(ExecutePlan(compiled.units[i].spec, planned.units[i].plan, workload,
                                         cloud_profile, options));
    }
  }
  for (const ExecutionReport& report : result.units) {
    result.jct = std::max(result.jct, report.jct);
    result.cost.compute += report.cost.compute;
    result.cost.data += report.cost.data;
    if (report.best_accuracy > result.best_accuracy) {
      result.best_accuracy = report.best_accuracy;
      result.best_config = report.best_config;
    }
  }
  return result;
}

}  // namespace rubberband
