// ASHA: Asynchronous Successive Halving (Li et al., the paper's primary
// related system, section 7).
//
// Where RubberBand executes a declarative SHA specification in synchronized
// stages, ASHA runs a fixed pool of workers with no barriers: each worker
// loops, taking either a promotion (a trial whose result placed in the top
// 1/eta of its rung) or — ASHA's hallmark — a freshly sampled configuration
// whenever no promotion is waiting. Rung r trains a trial to min_iters *
// eta^r cumulative iterations.
//
// Implemented here as the baseline RubberBand argues against: always
// sampling new configurations keeps the fixed cluster busy, but under a
// time constraint that spending is largely wasted on configurations that
// can never be trained far enough to win (the HyperSched observation the
// paper cites). The executor runs on the same simulated cloud and billing
// substrate, so costs are directly comparable.

#ifndef SRC_EXECUTOR_ASHA_H_
#define SRC_EXECUTOR_ASHA_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cloud/billing.h"
#include "src/cloud/cloud_profile.h"
#include "src/common/money.h"
#include "src/common/time.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"

namespace rubberband {

struct AshaOptions {
  int64_t min_iters = 1;    // rung 0 cumulative budget (r)
  int64_t max_iters = 50;   // top rung cumulative budget (R)
  int reduction_factor = 3; // eta
  int gpus_per_trial = 1;   // every worker gang has this fixed size
  int num_workers = 8;      // concurrent worker gangs (fixed pool)
  Seconds time_limit = 0.0; // wall-clock budget; the run stops here
  uint64_t seed = 0;
};

struct AshaRungStats {
  int completed = 0;  // results recorded at this rung
  int promoted = 0;   // results promoted to the next rung
};

// One promotion decision: `trial` placed in the top 1/eta of rung `rung`
// and was dispatched to rung + 1. The ordered log is the scheduler's full
// decision trace — two ASHA implementations agree iff their logs agree.
struct AshaPromotion {
  int rung = 0;
  int trial = -1;

  bool operator==(const AshaPromotion&) const = default;
};

struct AshaReport {
  int configurations_sampled = 0;
  double best_accuracy = 0.0;
  HyperparameterConfig best_config;
  int64_t best_config_cum_iters = 0;
  Seconds jct = 0.0;
  CostBreakdown cost;
  std::vector<AshaRungStats> rungs;
  std::vector<AshaPromotion> promotions;  // in decision order
};

// DEPRECATED: this side-car executor survives only as the comparison
// oracle for the compiled-ASHA path (src/executor/asha_engine.h runs the
// same promotion rule through the shared planner/executor/service stack);
// Compile.AshaOracleParity asserts the two produce identical promotion
// logs and final-trial selections before any divergence could land. New
// callers should compile an ExperimentIR with SchedulerKind::kAsha.
//
// Runs ASHA to the time limit on a fixed cluster sized for
// num_workers * gpus_per_trial GPUs.
AshaReport RunAsha(const WorkloadSpec& workload, const CloudProfile& cloud,
                   const AshaOptions& options);

}  // namespace rubberband

#endif  // SRC_EXECUTOR_ASHA_H_
