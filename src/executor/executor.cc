#include "src/executor/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dag/builder.h"
#include "src/planner/planner.h"

namespace rubberband {

namespace {

// The backoff jitter stream must differ across jobs even when callers leave
// the policy's seed at its default, so mix the job seed in.
RetryPolicy MergedRetry(const ExecutorOptions& options) {
  RetryPolicy retry = options.retry;
  retry.seed ^= options.seed * 0x9E3779B97F4A7C15ull;
  return retry;
}

}  // namespace

Executor::Executor(const ExperimentSpec& spec, const AllocationPlan& plan,
                   const WorkloadSpec& workload, const CloudProfile& cloud_profile,
                   const ExecutorOptions& options)
    : spec_(spec),
      plan_(plan),
      workload_(workload),
      options_(options),
      owned_sim_(std::make_unique<Simulation>(options.seed)),
      owned_cloud_(std::make_unique<SimulatedCloud>(*owned_sim_, cloud_profile)),
      sim_(*owned_sim_),
      cloud_(*owned_cloud_),
      shared_(false),
      manager_(sim_, cloud_, workload.dataset.size_gb, MergedRetry(options)),
      placement_(cloud_profile.gpus_per_instance(), options.placement),
      checkpoint_faults_(cloud_profile.fault, Rng(options.seed ^ 0xFA177EDull)) {
  spec_.Validate();
  plan_.Validate(spec_.num_stages());
  if (options_.straggler.detect || options_.straggler.mitigate) {
    detector_ = std::make_unique<StragglerDetector>(options_.straggler.detector);
  }
  InitMetrics();
}

Executor::Executor(const ExperimentSpec& spec, const AllocationPlan& plan,
                   const WorkloadSpec& workload, const SharedClusterContext& context,
                   const ExecutorOptions& options)
    : spec_(spec),
      plan_(plan),
      workload_(workload),
      options_(options),
      sim_(*context.sim),
      cloud_(*context.cloud),
      shared_(true),
      gpu_cap_(context.gpu_cap),
      manager_(sim_, *context.source, workload.dataset.size_gb, MergedRetry(options)),
      placement_(cloud_.profile().gpus_per_instance(), options.placement),
      checkpoint_faults_(cloud_.profile().fault, Rng(options.seed ^ 0xFA177EDull)) {
  spec_.Validate();
  plan_.Validate(spec_.num_stages());
  if (options_.straggler.detect || options_.straggler.mitigate) {
    detector_ = std::make_unique<StragglerDetector>(options_.straggler.detector);
  }
  InitMetrics();
}

void Executor::InitMetrics() {
  MetricsScope scope = metrics_.scope("executor");
  m_.preemptions = scope.GetCounter("preemptions");
  m_.crashes = scope.GetCounter("crashes");
  m_.trial_restarts = scope.GetCounter("trial_restarts");
  m_.provision_failures = scope.GetCounter("provision_failures");
  m_.provision_retries = scope.GetCounter("provision_retries");
  m_.capacity_shortfalls = scope.GetCounter("capacity_shortfalls");
  m_.degraded_stages = scope.GetCounter("degraded_stages");
  m_.replans = scope.GetCounter("replans");
  m_.checkpoint_retries = scope.GetCounter("checkpoint_retries");
  m_.stragglers_detected = scope.GetCounter("stragglers_detected");
  m_.stragglers_quarantined = scope.GetCounter("stragglers_quarantined");
  m_.straggler_false_positives = scope.GetCounter("straggler_false_positives");
  m_.detection_syncs = scope.GetCounter("straggler_detection_syncs");
  m_.recovery_seconds = scope.GetGauge("recovery_seconds");
  m_.mitigation_seconds = scope.GetGauge("straggler_mitigation_seconds");
  m_.slowdown_avoided = scope.GetGauge("straggler_slowdown_avoided_seconds");
  if (options_.observe) {
    m_.sync_wait = scope.GetHistogram("sync_wait_seconds");
    m_.stage_seconds = scope.GetHistogram("stage_seconds");
  }
  if (cloud_.profile().spot.enabled) {
    // Handles stay null on on-demand runs so their metric snapshots (and
    // every golden artifact derived from them) are byte-identical.
    MetricsScope spot = metrics_.scope("spot");
    m_.preemption_warnings = spot.GetCounter("preemption_warnings");
    m_.eager_checkpoints = spot.GetCounter("eager_checkpoints");
    m_.market_fallbacks = spot.GetCounter("market_fallbacks");
    m_.spot_preemptions = spot.GetCounter("preemptions");
    m_.spot_rework_seconds = spot.GetGauge("rework_seconds");
    m_.spot_savings = spot.GetGauge("savings_dollars");
  }
}

void Executor::Span(const char* name, Seconds start, Seconds end, int stage, int trial,
                    int64_t instance) {
  if (!options_.observe) {
    return;
  }
  timeline_.Record(TimelineSpan{name, "executor", start, end, 1, stage, trial, instance});
}

int Executor::EffectiveStageGpus(int stage) const {
  const int planned = plan_.gpus(stage);
  if (!gpu_cap_) {
    return planned;
  }
  const int cap = std::max(1, gpu_cap_());
  if (cap >= planned) {
    return planned;
  }
  // Clamp while keeping the fair-division invariant (factor or multiple of
  // the stage's trial count) so the stage still divides evenly.
  return std::max(1, FairFloorAllocation(cap, spec_.stage(stage).num_trials));
}

int Executor::DesiredInstances() const {
  const int gpg = cloud_.profile().gpus_per_instance();
  return (stage_gpus_ + gpg - 1) / gpg;
}

void Executor::RecordUsage(int gpus, Seconds duration) {
  cloud_.RecordFunctionUsage(gpus, duration);
  job_meter_.RecordFunctionUsage(gpus, duration);
}

void Executor::NoteAcquired(InstanceId id) {
  acquired_at_[id] = sim_.now();
  if (cloud_.profile().spot.enabled) {
    acquired_market_[id] = cloud_.InstanceMarket(id);
  }
}

double Executor::HeldMultiplier(InstanceId id, Seconds acquired) const {
  const SpotMarket& spot = cloud_.profile().spot;
  if (!spot.enabled) {
    return 1.0;
  }
  auto it = acquired_market_.find(id);
  if (it == acquired_market_.end() || it->second != Market::kSpot) {
    return 1.0;  // on-demand (fallback) capacity bills at full rate
  }
  return spot.discount * cloud_.SpotAverageMultiplier(acquired, sim_.now());
}

void Executor::NoteReleased(InstanceId id) {
  if (detector_) {
    detector_->Forget(id);  // covers every release path (quarantine, loss,
                            // deprovision, end-of-job)
  }
  auto it = acquired_at_.find(id);
  if (it == acquired_at_.end()) {
    return;  // never registered (e.g. reclaimed before first use)
  }
  job_meter_.RecordInstanceUsage(it->second, sim_.now(), HeldMultiplier(id, it->second), false);
  acquired_at_.erase(it);
  acquired_market_.erase(id);
}

void Executor::Start(std::function<void(const ExecutionReport&)> on_done) {
  if (current_stage_ >= 0) {
    throw std::logic_error("Executor may only be started once");
  }
  on_done_ = std::move(on_done);
  // Provisioning-failure accounting and shortfall degradation: the manager
  // reports every failed slot; an abandoned one (retries exhausted) means
  // capacity is not coming and the executor must degrade around the hole.
  manager_.SetFaultObserver([this](bool will_retry) {
    ++fault_events_;
    obs::Inc(m_.provision_failures);
    report_.trace.Record(sim_.now(), TraceEventType::kProvisionFailure, current_stage_);
    // Spot capacity rejection: the observer runs before the retry is
    // scheduled, so flipping the market here redirects the retry itself —
    // re-asking a market with no machines would burn the whole backoff
    // schedule for nothing. (On a shared cloud the rejection counter moves
    // for every tenant; a fallback prompted by a neighbour's rejection is
    // a benign over-reaction while the family is exhausted anyway.)
    if (options_.spot.market_fallback && cloud_.profile().spot.enabled &&
        manager_.market() == Market::kSpot &&
        cloud_.num_capacity_rejections() > capacity_rejections_seen_) {
      capacity_rejections_seen_ = cloud_.num_capacity_rejections();
      MarketFallback();
    }
    if (will_retry) {
      obs::Inc(m_.provision_retries);
      report_.trace.Record(sim_.now(), TraceEventType::kProvisionRetry, current_stage_);
    } else {
      obs::Inc(m_.capacity_shortfalls);
      report_.trace.Record(sim_.now(), TraceEventType::kProvisionGiveUp, current_stage_);
      HandleShortfall();
    }
  });
  // One configuration per initial trial, from the options' source (by
  // default the same random-search stream this loop always drew inline).
  const int initial_trials = spec_.stage(0).num_trials;
  const std::vector<HyperparameterConfig> configs =
      options_.configs.Materialize(initial_trials, options_.seed);
  for (int i = 0; i < initial_trials; ++i) {
    trials_.emplace_back(i, workload_, configs[static_cast<size_t>(i)],
                         options_.seed * 7919 + static_cast<uint64_t>(i));
    survivors_.push_back(i);
  }

  if (options_.observe) {
    // Rough upper bound — a few spans per trial (checkpoint/restore) plus a
    // few per stage (provision/plan/stage-run/sync/total) — so the timeline
    // backing store is allocated once.
    timeline_.Reserve(static_cast<size_t>(8 * initial_trials + 8 * spec_.num_stages()));
  }

  StartStage(0);
}

ExecutionReport Executor::Run() {
  if (shared_) {
    throw std::logic_error("Run() drives its own simulation; shared executors use Start()");
  }
  cloud_.SetPreemptionHandler([this](InstanceId id) { OnPreemption(id); });
  cloud_.SetCrashHandler([this](InstanceId id) { OnCrash(id); });
  cloud_.SetPreemptionWarningHandler([this](InstanceId id) { OnPreemptionWarning(id); });
  cloud_.SetPriceChangeHandler([this](double multiplier) {
    // The multiplier rides in the instance column, in basis points, so the
    // trace CSV stays integral.
    report_.trace.Record(sim_.now(), TraceEventType::kSpotPriceChange, current_stage_, -1,
                         static_cast<int64_t>(std::lround(multiplier * 10000.0)));
  });
  Start(nullptr);
  sim_.Run();
  if (!finished_) {
    throw std::logic_error("simulation drained without completing the experiment");
  }
  // Single-shot: the executor is done, so hand the report (trace, timeline,
  // metrics snapshot) to the caller without a deep copy.
  return std::move(report_);
}

bool Executor::OwnsInstance(InstanceId instance) const {
  const std::vector<InstanceId>& held = manager_.ready_instances();
  return std::find(held.begin(), held.end(), instance) != held.end();
}

void Executor::StartStage(int stage) {
  current_stage_ = stage;
  stage_gpus_ = EffectiveStageGpus(stage);
  completed_in_stage_ = 0;
  replacements_exhausted_ = false;
  stage_degradation_reported_ = false;
  stage_open_at_ = sim_.now();
  stage_completed_at_.clear();
  // Boundary checkpoints taken below supersede any warning-window saves
  // from the previous stage.
  eager_checkpoint_remaining_.clear();
  const Stage& spec_stage = spec_.stage(stage);
  if (static_cast<int>(survivors_.size()) != spec_stage.num_trials) {
    throw std::logic_error("survivor count does not match the specification");
  }
  for (TrialId id : survivors_) {
    Trial& trial = trials_[static_cast<size_t>(id)];
    trial.AssignStageWork(spec_stage.iters_per_trial);
    // Checkpoint at the stage boundary (one worker serializes into the
    // driver's object store): migrations restore from here, and if a spot
    // instance is reclaimed mid-stage the interrupted trial restarts here.
    trial.SaveCheckpoint();
    const Seconds save = checkpoint_store_.Save(id, workload_.checkpoint_gb);
    Span("checkpoint", sim_.now(), sim_.now() + save, stage, id);
  }

  manager_.EnsureInstances(DesiredInstances(), [this, stage] { BeginTraining(stage); });
}

void Executor::BeginTraining(int stage) {
  // Register any newly provisioned instances with the placement controller.
  for (InstanceId id : manager_.ready_instances()) {
    if (std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(), id) ==
        nodes_in_controller_.end()) {
      placement_.AddNode(id);
      nodes_in_controller_.push_back(id);
      NoteAcquired(id);
      report_.trace.Record(sim_.now(), TraceEventType::kInstanceReady, stage, -1, id);
    }
  }

  // The cluster may be smaller than planned (capacity shortfall after
  // exhausted provisioning retries lowered the wait target); run the stage
  // on what actually arrived rather than stalling on instances that are
  // not coming.
  const int gpg = cloud_.profile().gpus_per_instance();
  const int available = manager_.num_ready() * gpg;
  if (available < stage_gpus_) {
    stage_gpus_ =
        std::max(1, FairFloorAllocation(available, static_cast<int>(survivors_.size())));
    obs::Inc(m_.degraded_stages);
    stage_degradation_reported_ = true;
    report_.trace.Record(sim_.now(), TraceEventType::kStageDegraded, stage);
  }

  const int gpus = stage_gpus_;
  const StageSchedule schedule = BuildStageSchedule(survivors_, gpus);
  gpus_per_trial_ = schedule.gpus_per_trial;
  queued_.assign(schedule.queued.begin(), schedule.queued.end());

  allocations_.clear();
  for (TrialId id : schedule.running) {
    allocations_[id] = gpus_per_trial_;
  }
  // Stage boundaries are migration points (every survivor restores from its
  // checkpoint onto a fresh worker gang anyway), so re-pack from scratch:
  // bin-packing before scale-down is what frees whole nodes for safe
  // deprovisioning (paper Figure 5). Within a stage, placements are
  // preserved.
  placement_.Place({});
  const PlacementResult placed = placement_.Place(allocations_);
  for (TrialId id : placed.unplaced) {
    // Cluster cannot fit the trial right now (possible under the scatter
    // strategy); queue it behind the others.
    allocations_.erase(id);
    queued_.push_back(id);
  }

  // Bin-packing done: retire surplus idle nodes so the cluster matches the
  // plan (deprovisioning is safe because no trial holds GPUs on them).
  const int desired_instances = DesiredInstances();
  for (PlacementNodeId idle : placement_.IdleNodes()) {
    if (manager_.num_ready() <= desired_instances) {
      break;
    }
    placement_.RemoveNode(idle);
    nodes_in_controller_.erase(
        std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(), idle));
    manager_.Deprovision({idle});
    NoteReleased(idle);
    report_.trace.Record(sim_.now(), TraceEventType::kInstanceReleased, stage, -1, idle);
  }

  report_.trace.Record(sim_.now(), TraceEventType::kStageStart, stage);
  // Everything between the stage opening (previous SYNC) and here was
  // checkpointing + provisioning/bin-packing wait.
  training_begin_at_ = sim_.now();
  Span("provision", stage_open_at_, sim_.now(), stage);

  StageLogEntry log;
  log.stage = stage;
  log.num_trials = static_cast<int>(survivors_.size());
  log.gpus = gpus;
  log.gpus_per_trial = gpus_per_trial_;
  log.instances = manager_.num_ready();
  log.start_cum_iters = stage > 0 ? spec_.CumulativeIters(stage - 1) : 0;
  log.end_cum_iters = spec_.CumulativeIters(stage);
  log.start = sim_.now();
  report_.stage_log.push_back(log);

  for (TrialId id : schedule.running) {
    if (allocations_.count(id) > 0) {
      StartTrialOnStage(id, gpus_per_trial_);
    }
  }
}

void Executor::StartTrialOnStage(TrialId id, int gpus) {
  Trial& trial = trials_[static_cast<size_t>(id)];
  Seconds startup = workload_.trial_startup_seconds;
  if (trial.has_checkpoint()) {
    trial.RestoreFromCheckpoint();
    // The fresh gang fetches the checkpoint from the driver's object store
    // (recovering from transfer failures or a missing object).
    const Seconds fetch = FetchCheckpoint(id);
    Span("restore", sim_.now(), sim_.now() + fetch, current_stage_, id);
    startup += fetch;
  }
  trial.set_state(TrialState::kRunning);
  trial.trainer().Configure(gpus, placement_.IsColocated(id));
  SetupGang(id);
  busy_start_[id] = sim_.now();
  report_.trace.Record(sim_.now(), TraceEventType::kTrialStart, current_stage_, id);
  const int generation = ++generation_[id];
  CancelTrialEvent(id);
  // Worker gang startup: checkpoint fetch + peer rendezvous.
  pending_trial_event_[id] = sim_.ScheduleIn(startup, [this, id, generation] {
    if (generation_[id] == generation) {
      ScheduleNextIteration(id);
    }
  });
}

void Executor::CancelTrialEvent(TrialId id) {
  auto it = pending_trial_event_.find(id);
  if (it != pending_trial_event_.end()) {
    sim_.Cancel(it->second);
    pending_trial_event_.erase(it);
  }
}

void Executor::SetupGang(TrialId id) {
  Trial& trial = trials_[static_cast<size_t>(id)];
  std::vector<InstanceId> instances;
  for (const WorkerAssignment& assignment : placement_.plan().Assignments(id)) {
    if (std::find(instances.begin(), instances.end(), assignment.node) == instances.end()) {
      instances.push_back(assignment.node);
    }
  }
  std::vector<double> slowdowns;
  if (cloud_.profile().fault.straggler_rate > 0.0) {
    // Per-worker latency draws only when stragglers can exist: with the
    // vector left empty the trainer keeps its original single-draw path and
    // rate-zero runs stay bit-identical.
    slowdowns.reserve(instances.size());
    for (InstanceId instance : instances) {
      slowdowns.push_back(cloud_.StragglerFactor(instance));
    }
  }
  trial.trainer().SetWorkerSlowdowns(std::move(slowdowns));
  trial_instances_[id] = std::move(instances);
}

void Executor::ScheduleNextIteration(TrialId id) {
  Trial& trial = trials_[static_cast<size_t>(id)];
  if (trial.remaining_iters() <= 0) {
    OnTrialStageDone(id);
    return;
  }
  const Seconds latency = trial.trainer().SampleIterLatency();
  const int generation = generation_[id];
  pending_trial_event_[id] = sim_.ScheduleIn(latency, [this, id, generation] {
    if (generation_[id] != generation) {
      return;  // this worker gang was destroyed (preemption/migration)
    }
    Trial& t = trials_[static_cast<size_t>(id)];
    t.trainer().Advance(1);
    t.CompleteIteration();
    if (detector_) {
      RecordIterationObservations(id);
      if (generation_[id] != generation) {
        return;  // a quarantine just tore this gang down
      }
    }
    ScheduleNextIteration(id);
  });
}

void Executor::RecordIterationObservations(TrialId id) {
  Trial& trial = trials_[static_cast<size_t>(id)];
  // Copies: a quarantine triggered below mutates both source containers.
  const std::vector<double> latencies = trial.trainer().last_worker_latencies();
  auto it = trial_instances_.find(id);
  if (it == trial_instances_.end() || latencies.empty()) {
    return;
  }
  const std::vector<InstanceId> instances = it->second;
  const Seconds expected = trial.trainer().MeanIterLatency();
  if (expected <= 0.0) {
    return;
  }
  std::vector<InstanceId> flagged;
  for (size_t i = 0; i < instances.size(); ++i) {
    // Single-draw mode yields one gang latency; attribute it to every host
    // (they all look alike, which is exactly right — nothing to tell apart).
    const double observed =
        latencies.size() == instances.size() ? latencies[i] : latencies.front();
    if (detector_->Observe(instances[i], observed / expected)) {
      flagged.push_back(instances[i]);
    }
  }
  for (InstanceId instance : flagged) {
    OnStragglerFlagged(instance);
  }
}

void Executor::OnStragglerFlagged(InstanceId instance) {
  obs::Inc(m_.stragglers_detected);
  obs::Inc(m_.detection_syncs, detector_->ObservationsAtFlag(instance));
  report_.trace.Record(sim_.now(), TraceEventType::kStragglerDetected, current_stage_, -1,
                       instance);
  // Ground truth consulted to *grade* the detector, never to drive it: the
  // flag above was produced from observed latencies alone.
  if (cloud_.StragglerFactor(instance) <= 1.0) {
    obs::Inc(m_.straggler_false_positives);
    report_.trace.Record(sim_.now(), TraceEventType::kStragglerFalsePositive, current_stage_,
                         -1, instance);
  }
  if (!options_.straggler.mitigate ||
      m_.stragglers_quarantined->value() >= options_.straggler.max_quarantines) {
    return;
  }
  QuarantineInstance(instance);
}

void Executor::QuarantineInstance(InstanceId instance) {
  const auto tracked = std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(),
                                 instance);
  if (tracked == nodes_in_controller_.end()) {
    return;  // lost to a crash/preemption in the meantime
  }
  obs::Inc(m_.stragglers_quarantined);
  ++fault_events_;
  report_.trace.Record(sim_.now(), TraceEventType::kStragglerQuarantined, current_stage_, -1,
                       instance);
  const double factor = cloud_.StragglerFactor(instance);
  Seconds quarantine_cost = 0.0;
  // Slowdown-avoided estimate, accumulated below: expected iteration
  // seconds the instance would still have dragged, each taxed by
  // (factor - 1) — its trials' remaining stage work, plus each later
  // stage's per-trial work at that stage's planned gang size, weighted by
  // the chance the node survives the stage-boundary scale-downs.
  Seconds dragged_iter_seconds = 0.0;
  // Exclude the node from new placements, then evict its gangs outright.
  placement_.SetUnschedulable(instance, true);
  for (TrialId id : placement_.EvictNode(instance)) {
    Trial& trial = trials_[static_cast<size_t>(id)];
    if (trial.state() != TrialState::kRunning) {
      continue;
    }
    ++generation_[id];  // invalidate in-flight iteration events
    CancelTrialEvent(id);
    const int gpus = allocations_.count(id) > 0 ? allocations_[id] : gpus_per_trial_;
    RecordUsage(gpus, sim_.now() - busy_start_[id]);
    allocations_.erase(id);
    trial.set_state(TrialState::kPending);
    // The node is slow, not dead: unlike the crash path, the trial's
    // *current* progress is checkpointed before the gang is torn down, so
    // mitigation loses no completed iterations (only the save + restart
    // wait, billed to mitigation below and in NoteRestarted).
    trial.SaveCheckpoint();
    const Seconds save = checkpoint_store_.Save(id, workload_.checkpoint_gb);
    obs::Add(m_.mitigation_seconds, save);
    quarantine_cost += save;
    dragged_iter_seconds +=
        trial.trainer().MeanIterLatency() * static_cast<double>(trial.remaining_iters());
    pending_restart_.push_back(id);
    pending_since_[id] = sim_.now();
    quarantine_pending_.insert(id);
    obs::Inc(m_.trial_restarts);
    report_.trace.Record(sim_.now(), TraceEventType::kTrialRestart, current_stage_, id);
  }
  Span("quarantine", sim_.now(), sim_.now() + quarantine_cost, current_stage_, -1, instance);
  if (factor > 1.0) {
    const int gpg = cloud_.profile().gpus_per_instance();
    const int instances_now = std::max(1, manager_.num_ready());  // still includes this one
    Seconds tail_iter_seconds = 0.0;
    for (int s = current_stage_ + 1; s < spec_.num_stages(); ++s) {
      const int stage_gpus = plan_.gpus(s);
      const int gpt = std::max(1, stage_gpus / std::max(1, spec_.stage(s).num_trials));
      const int stage_instances = (stage_gpus + gpg - 1) / gpg;
      const double retained =
          std::min(1.0, static_cast<double>(stage_instances) / instances_now);
      tail_iter_seconds += retained * static_cast<double>(spec_.stage(s).iters_per_trial) *
                           workload_.base_iter_seconds * workload_.true_scaling.LatencyFactor(gpt);
    }
    obs::Add(m_.slowdown_avoided, (factor - 1.0) * (dragged_iter_seconds + tail_iter_seconds));
  }
  nodes_in_controller_.erase(std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(),
                                       instance));
  // Blacklist + discard: terminated at the source (never parked for reuse).
  manager_.Quarantine(instance);
  NoteReleased(instance);
  if (!manager_.awaiting_scale()) {
    RequestReplacement();
  }
  TryRestartPending();
}

void Executor::OnTrialStageDone(TrialId id) {
  Trial& trial = trials_[static_cast<size_t>(id)];
  trial.set_state(TrialState::kCompleted);
  ++completed_in_stage_;
  if (options_.observe) {
    stage_completed_at_.push_back(sim_.now());
  }
  report_.trace.Record(sim_.now(), TraceEventType::kTrialComplete, current_stage_, id);

  const Seconds busy = sim_.now() - busy_start_[id];
  const int gpus = allocations_.count(id) > 0 ? allocations_[id] : gpus_per_trial_;
  RecordUsage(gpus, busy);

  if (options_.record_throughput) {
    const Seconds training_time = busy - workload_.trial_startup_seconds;
    const int64_t iters = spec_.stage(current_stage_).iters_per_trial;
    if (training_time > 0.0 && iters > 0) {
      report_.trial_throughputs.push_back(static_cast<double>(workload_.batch_size * iters) /
                                          training_time);
    }
  }

  allocations_.erase(id);
  if (!queued_.empty()) {
    const TrialId next = queued_.front();
    queued_.pop_front();
    allocations_[next] = gpus_per_trial_;
    const PlacementResult placed = placement_.Place(allocations_);
    if (!placed.unplaced.empty()) {
      // The freed slot may have been on a since-preempted node; requeue and
      // wait for capacity (the next completion or a replacement instance).
      allocations_.erase(next);
      queued_.push_front(next);
    } else {
      StartTrialOnStage(next, gpus_per_trial_);
      return;
    }
  }

  // Once replacements are exhausted no instance arrival will drain the
  // pending queue, so freed capacity from completions has to.
  if (replacements_exhausted_ && !pending_restart_.empty()) {
    DegradePendingRestarts();
  }

  if (completed_in_stage_ == static_cast<int>(survivors_.size())) {
    const int stage = current_stage_;
    stage_run_end_ = sim_.now();
    if (options_.observe) {
      // How long each survivor idled at the barrier waiting for the last
      // trial (zero for the trial that closed the stage).
      for (const Seconds completed_at : stage_completed_at_) {
        obs::ObserveSeconds(m_.sync_wait, stage_run_end_ - completed_at);
      }
    }
    sim_.ScheduleIn(workload_.sync_seconds, [this, stage] { Sync(stage); });
    return;
  }

  if (options_.reallocate_freed_resources && queued_.empty()) {
    ReallocateFreedResources();
  }
}

void Executor::ReallocateFreedResources() {
  std::vector<TrialId> running;
  for (const auto& [id, gpus] : allocations_) {
    running.push_back(id);
  }
  if (running.empty()) {
    return;
  }
  const int new_share = GpusPerTrial(stage_gpus_, static_cast<int>(running.size()));
  // Hysteresis: resizing destroys and recreates every running gang (each
  // paying startup again), so only act when the fair share has at least
  // doubled — otherwise completion-by-completion churn thrashes the stage.
  bool worthwhile = false;
  for (TrialId id : running) {
    worthwhile = worthwhile || new_share >= 2 * allocations_[id];
  }
  if (!worthwhile) {
    return;
  }

  // Resize every running gang: checkpoint, settle the finished billing
  // segment, destroy the gang (generation bump inside StartTrialOnStage)
  // and restart at the new size — including a fresh startup cost, which is
  // part of why this policy underdelivers.
  for (TrialId id : running) {
    Trial& trial = trials_[static_cast<size_t>(id)];
    trial.SaveCheckpoint();
    checkpoint_store_.Save(id, workload_.checkpoint_gb);
    RecordUsage(allocations_[id], sim_.now() - busy_start_[id]);
    allocations_[id] = new_share;
  }
  const PlacementResult placed = placement_.Place(allocations_);
  for (TrialId id : running) {
    const bool unplaced =
        std::find(placed.unplaced.begin(), placed.unplaced.end(), id) != placed.unplaced.end();
    if (unplaced) {
      // Could not fit at the larger size (fragmentation); keep it running
      // at one GPU on whatever fits.
      allocations_[id] = 1;
      placement_.Place(allocations_);
    }
    StartTrialOnStage(id, allocations_[id]);
  }
}

void Executor::OnPreemption(InstanceId instance) { OnInstanceLost(instance, false); }

void Executor::OnCrash(InstanceId instance) { OnInstanceLost(instance, true); }

void Executor::OnPreemptionWarning(InstanceId instance) {
  if (finished_) {
    return;
  }
  const bool tracked = std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(),
                                 instance) != nodes_in_controller_.end();
  if (!tracked) {
    return;  // warned before the executor ever used it (mid-scale-up)
  }
  obs::Inc(m_.preemption_warnings);
  report_.trace.Record(sim_.now(), TraceEventType::kPreemptionWarning, current_stage_, -1,
                       instance);
  // Eagerly checkpoint every running trial whose gang spans the doomed
  // instance, at its *current* progress. The gang keeps training through
  // the warning window (those iterations may still land); when the
  // reclamation arrives, the loss path restores from here, so at most the
  // window's work is redone instead of the whole stage.
  for (const auto& [id, instances] : trial_instances_) {
    if (std::find(instances.begin(), instances.end(), instance) == instances.end()) {
      continue;
    }
    Trial& trial = trials_[static_cast<size_t>(id)];
    if (trial.state() != TrialState::kRunning) {
      continue;
    }
    trial.SaveCheckpoint();
    const Seconds save = checkpoint_store_.Save(id, workload_.checkpoint_gb);
    Span("eager-checkpoint", sim_.now(), sim_.now() + save, current_stage_, id, instance);
    eager_checkpoint_remaining_[id] = trial.remaining_iters();
    obs::Inc(m_.eager_checkpoints);
  }
}

void Executor::OnInstanceLost(InstanceId instance, bool crashed) {
  obs::Inc(crashed ? m_.crashes : m_.preemptions);
  if (!crashed) {
    obs::Inc(m_.spot_preemptions);  // the spot.* view; null when spot is off
  }
  if (finished_) {
    return;
  }
  ++fault_events_;
  report_.trace.Record(sim_.now(),
                       crashed ? TraceEventType::kInstanceCrash : TraceEventType::kPreemption,
                       current_stage_, -1, instance);
  manager_.OnInstanceLost(instance);
  NoteReleased(instance);
  const bool tracked = std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(),
                                 instance) != nodes_in_controller_.end();
  if (!tracked) {
    // Reclaimed before the executor ever used it (mid-scale-up): the
    // manager already re-requested the lost capacity for its waiter.
    return;
  }
  nodes_in_controller_.erase(
      std::find(nodes_in_controller_.begin(), nodes_in_controller_.end(), instance));

  // Every trial with workers on the lost node loses its gang; roll it
  // back to the stage-start checkpoint and queue it for restart.
  for (TrialId id : placement_.EvictNode(instance)) {
    Trial& trial = trials_[static_cast<size_t>(id)];
    if (trial.state() != TrialState::kRunning) {
      continue;  // already finished its stage work; ranking state is safe
    }
    ++generation_[id];  // invalidate in-flight iteration events
    CancelTrialEvent(id);
    const int gpus = allocations_.count(id) > 0 ? allocations_[id] : gpus_per_trial_;
    RecordUsage(gpus, sim_.now() - busy_start_[id]);
    allocations_.erase(id);
    trial.set_state(TrialState::kPending);
    // Roll back to the newest checkpoint: a warning-window eager save (the
    // trial resumes the remaining work recorded at save time) when one
    // exists, the stage-start boundary checkpoint (full stage redone)
    // otherwise. The difference between the rolled-back-to point and the
    // progress at loss is rework the preemption cost us.
    trial.RestoreFromCheckpoint();
    auto eager = eager_checkpoint_remaining_.find(id);
    const int64_t checkpoint_iters = eager != eager_checkpoint_remaining_.end()
                                         ? eager->second
                                         : spec_.stage(current_stage_).iters_per_trial;
    if (!crashed) {
      const int64_t lost_iters = std::max<int64_t>(0, checkpoint_iters - trial.remaining_iters());
      obs::Add(m_.spot_rework_seconds,
               static_cast<double>(lost_iters) * trial.trainer().MeanIterLatency());
    }
    trial.AssignStageWork(checkpoint_iters);
    if (eager != eager_checkpoint_remaining_.end()) {
      eager_checkpoint_remaining_.erase(eager);
    }
    pending_restart_.push_back(id);
    pending_since_[id] = sim_.now();
    obs::Inc(m_.trial_restarts);
    report_.trace.Record(sim_.now(), TraceEventType::kTrialRestart, current_stage_, id);
  }

  // A reclamation storm just swept the family: replacement capacity (and
  // everything after) goes on-demand rather than back into the blast zone.
  if (!crashed && options_.spot.market_fallback && cloud_.profile().spot.enabled &&
      manager_.market() == Market::kSpot && cloud_.num_storms() > storms_seen_) {
    storms_seen_ = cloud_.num_storms();
    MarketFallback();
  }

  // Ask for a replacement to keep the cluster at the planned size; restart
  // what we can as soon as it arrives (or immediately, if spare capacity
  // remains). While a scale request is outstanding the manager already
  // re-requested the lost capacity, so don't double-provision.
  if (!manager_.awaiting_scale()) {
    RequestReplacement();
  }
  TryRestartPending();
}

void Executor::RequestReplacement() {
  manager_.RequestExtra(1, [this](InstanceId replacement) {
    if (finished_) {
      // The job ended while the replacement was provisioning: release it
      // immediately so it does not sit in the manager billing forever
      // (on a shared cluster it goes back to the pool for the next job).
      manager_.Deprovision({replacement});
      return;
    }
    revival_cycles_ = 0;  // capacity came back; future losses retry afresh
    placement_.AddNode(replacement);
    nodes_in_controller_.push_back(replacement);
    NoteAcquired(replacement);
    TryRestartPending();
  });
}

void Executor::HandleShortfall() {
  if (finished_) {
    return;
  }
  if (manager_.awaiting_scale()) {
    // Stage-boundary scale-up stalled: settle for the size the cluster can
    // actually reach so the stage starts (degraded) instead of hanging.
    manager_.ReduceWaitTarget(std::max(1, manager_.num_ready() + manager_.num_inflight()));
    return;
  }
  // A mid-stage replacement was abandoned: no more capacity is coming, so
  // restart pending trials at whatever gang sizes the survivors can host.
  // That IS a degradation of the running stage — it proceeds below its
  // planned GPUs from here on — so report it like one (at most once per
  // stage, even if several replacement slots are abandoned).
  replacements_exhausted_ = true;
  if (!stage_degradation_reported_) {
    obs::Inc(m_.degraded_stages);
    stage_degradation_reported_ = true;
    report_.trace.Record(sim_.now(), TraceEventType::kStageDegraded, current_stage_);
  }
  DegradePendingRestarts();

  // Total capacity loss: nothing is running, nothing is in flight, and
  // work remains. Degrading cannot help — there is no node to shrink onto
  // and no completion event will ever retry — so open a fresh replacement
  // cycle rather than strand the job. Bounded so a permanent provider
  // blackout still drains (and surfaces) instead of retrying forever.
  constexpr int kMaxRevivalCycles = 8;
  if (manager_.num_ready() == 0 && manager_.num_inflight() == 0 &&
      !pending_restart_.empty() && revival_cycles_ < kMaxRevivalCycles) {
    ++revival_cycles_;
    replacements_exhausted_ = false;
    RequestReplacement();
  }
}

void Executor::TryRestartPending() {
  while (!pending_restart_.empty()) {
    const TrialId id = pending_restart_.front();
    allocations_[id] = gpus_per_trial_;
    const PlacementResult placed = placement_.Place(allocations_);
    if (!placed.unplaced.empty()) {
      allocations_.erase(id);
      break;  // no capacity yet; wait for the replacement instance
    }
    pending_restart_.pop_front();
    NoteRestarted(id);
    StartTrialOnStage(id, gpus_per_trial_);
  }
}

void Executor::DegradePendingRestarts() {
  while (!pending_restart_.empty()) {
    const TrialId id = pending_restart_.front();
    // Try the planned gang size first, then progressively halve: a smaller
    // gang trains slower but a pending trial makes no progress at all.
    int gpus = gpus_per_trial_;
    bool fits = false;
    while (gpus >= 1) {
      allocations_[id] = gpus;
      const PlacementResult placed = placement_.Place(allocations_);
      if (placed.unplaced.empty()) {
        fits = true;
        break;
      }
      allocations_.erase(id);
      gpus /= 2;
    }
    if (!fits) {
      return;  // not even one GPU free; the next completion retries
    }
    pending_restart_.pop_front();
    NoteRestarted(id);
    StartTrialOnStage(id, allocations_[id]);
  }
}

Seconds Executor::FetchCheckpoint(TrialId id) {
  constexpr int kMaxFetchAttempts = 3;
  Seconds total = 0.0;
  for (int attempt = 0;; ++attempt) {
    std::optional<Seconds> latency = checkpoint_store_.Fetch(id);
    if (!latency.has_value()) {
      // The store holds no object for this trial (evicted or lost): a
      // recoverable condition — re-serialize from the driver's in-memory
      // replica (the trial itself restored from its last rung boundary)
      // and fetch the fresh object.
      obs::Inc(m_.checkpoint_retries);
      ++fault_events_;
      report_.trace.Record(sim_.now(), TraceEventType::kCheckpointRetry, current_stage_, id);
      total += checkpoint_store_.Save(id, workload_.checkpoint_gb);
      latency = checkpoint_store_.Fetch(id);
    }
    total += latency.value();
    if (attempt + 1 >= kMaxFetchAttempts || !checkpoint_faults_.CheckpointFetchFails()) {
      return total;
    }
    // Transfer failed mid-flight: the gang pays the latency again.
    obs::Inc(m_.checkpoint_retries);
    ++fault_events_;
    report_.trace.Record(sim_.now(), TraceEventType::kCheckpointRetry, current_stage_, id);
  }
}

void Executor::NoteRestarted(TrialId id) {
  auto it = pending_since_.find(id);
  if (it == pending_since_.end()) {
    return;
  }
  const Seconds waited = sim_.now() - it->second;
  if (quarantine_pending_.erase(id) > 0) {
    obs::Add(m_.mitigation_seconds, waited);  // mitigation's own bill
  } else {
    obs::Add(m_.recovery_seconds, waited);
  }
  pending_since_.erase(it);
}

void Executor::MaybeReplan(int next_stage) {
  // Gated on an observed fault: a fault-free run never re-estimates, so
  // enabling re-planning cannot perturb it.
  if (!options_.replan.enabled || fault_events_ == 0 || next_stage >= spec_.num_stages()) {
    return;
  }
  const Seconds remaining = options_.replan.deadline - sim_.now();
  ExperimentSpec rest;
  std::vector<int> tail_gpus;
  for (int s = next_stage; s < spec_.num_stages(); ++s) {
    rest.AddStage(spec_.stage(s).num_trials, spec_.stage(s).iters_per_trial);
    tail_gpus.push_back(plan_.gpus(s));
  }
  PlannerInputs inputs;
  inputs.spec = rest;
  inputs.model = options_.replan.model;
  inputs.cloud = cloud_.profile();
  inputs.deadline = std::max<Seconds>(remaining, 1.0);
  // One evaluator serves both the keep-the-plan check and (if needed) the
  // full re-plan: the tail estimate seeds the plan memo the greedy search
  // then draws from.
  PlanEvaluator evaluator(inputs, options_.replan.planner);
  // If the tail of the original plan still fits the time left, the slack
  // absorbed the fault delay — keep the plan.
  const PlanEstimate estimate = evaluator.Evaluate(AllocationPlan(tail_gpus));
  if (estimate.jct_mean <= remaining) {
    report_.planner_cache += evaluator.stats();
    return;
  }
  // Slack is gone: re-plan the remaining stages against the time actually
  // left (Algorithm 2 over the remaining sub-experiment). An infeasible
  // remainder still yields the fastest plan found — deadline-aware
  // degradation: run as fast as possible rather than stalling.
  const PlannedJob replanned = PlanGreedy(evaluator);
  report_.planner_cache += evaluator.stats();
  for (int s = next_stage; s < spec_.num_stages(); ++s) {
    plan_.gpus(s) = replanned.plan.gpus(s - next_stage);
  }
  obs::Inc(m_.replans);
  Span("plan", sim_.now(), sim_.now(), next_stage);
  report_.trace.Record(sim_.now(), TraceEventType::kReplan, next_stage);
}

void Executor::MarketFallback() {
  if (market_fallbacks_done_ >= options_.spot.max_fallbacks ||
      manager_.market() != Market::kSpot) {
    return;
  }
  ++market_fallbacks_done_;
  manager_.set_market(Market::kOnDemand);
  obs::Inc(m_.market_fallbacks);
  report_.trace.Record(sim_.now(), TraceEventType::kMarketFallback, current_stage_);
}

void Executor::MaybeSwitchMarket() {
  const SpotMarket& spot = cloud_.profile().spot;
  if (!spot.enabled || !options_.spot.market_fallback) {
    return;
  }
  const double price = cloud_.SpotPriceMultiplier();
  if (manager_.market() == Market::kSpot) {
    // Hostile-market check at the stage boundary (the natural reallocation
    // point): a price spike, or realized preemptions far above what the
    // profile's mean time to preemption predicts.
    bool hostile = price >= options_.spot.fallback_price_multiplier;
    if (!hostile && spot.HazardEnabled() && m_.preemptions != nullptr) {
      const double expected = sim_.now() / spot.mean_time_to_preemption *
                              std::max(1, manager_.num_ready());
      hostile = static_cast<double>(m_.preemptions->value()) >
                options_.spot.hazard_tolerance * std::max(expected, 1.0);
    }
    if (hostile) {
      MarketFallback();
    }
  } else if (price <= options_.spot.give_back_price_multiplier) {
    // The market calmed down: future capacity goes back to spot. Absorb
    // any storms/rejections that happened while we were away so stale
    // events cannot immediately re-trigger the fallback.
    manager_.set_market(Market::kSpot);
    storms_seen_ = cloud_.num_storms();
    capacity_rejections_seen_ = cloud_.num_capacity_rejections();
  }
}

void Executor::Sync(int stage) {
  report_.stage_log.back().end = sim_.now();
  report_.trace.Record(sim_.now(), TraceEventType::kSync, stage);
  // The stage-total spans tile [0, JCT]: stage i opens at SYNC(i-1) (stage
  // 0 at t=0) and closes here; StartStage(i+1) runs below at this same
  // instant, and Finish() stamps jct = now after the last SYNC.
  Span("stage-run", training_begin_at_, stage_run_end_, stage);
  Span("sync-barrier", stage_run_end_, sim_.now(), stage);
  Span("stage-total", stage_open_at_, sim_.now(), stage);
  obs::ObserveSeconds(m_.stage_seconds, sim_.now() - stage_open_at_);

  // Evaluate every trial that ran this stage and rank them.
  for (TrialId id : survivors_) {
    Trial& trial = trials_[static_cast<size_t>(id)];
    trial.set_last_accuracy(trial.trainer().Evaluate());
  }
  std::vector<TrialId> ranked = survivors_;
  std::sort(ranked.begin(), ranked.end(), [this](TrialId a, TrialId b) {
    const double accuracy_a = trials_[static_cast<size_t>(a)].last_accuracy();
    const double accuracy_b = trials_[static_cast<size_t>(b)].last_accuracy();
    return accuracy_a != accuracy_b ? accuracy_a > accuracy_b : a < b;
  });

  if (stage + 1 >= spec_.num_stages()) {
    Finish(stage);
    return;
  }

  // Promote the top performers; terminate the rest.
  const int keep = spec_.stage(stage + 1).num_trials;
  survivors_.assign(ranked.begin(), ranked.begin() + keep);
  for (size_t i = static_cast<size_t>(keep); i < ranked.size(); ++i) {
    trials_[static_cast<size_t>(ranked[i])].set_state(TrialState::kTerminated);
    checkpoint_store_.Evict(ranked[i]);  // free driver memory
    report_.trace.Record(sim_.now(), TraceEventType::kTrialTerminated, stage, ranked[i]);
  }
  // Survivors are checkpointed so their next worker gang (possibly on
  // different instances, at a different size) can restore them.
  for (TrialId id : survivors_) {
    trials_[static_cast<size_t>(id)].SaveCheckpoint();
    trials_[static_cast<size_t>(id)].set_state(TrialState::kPaused);
  }
  // Stage boundaries are also market-choice points: re-decide spot vs
  // on-demand from the observed price and preemption rate before scaling.
  MaybeSwitchMarket();
  // Deadline-aware self-healing: if accumulated fault delay burned the
  // slack, re-plan the remaining stages before committing to the next one.
  MaybeReplan(stage + 1);
  StartStage(stage + 1);
}

void Executor::Finish(int final_stage) {
  (void)final_stage;
  const TrialId best = *std::max_element(
      survivors_.begin(), survivors_.end(), [this](TrialId a, TrialId b) {
        return trials_[static_cast<size_t>(a)].last_accuracy() <
               trials_[static_cast<size_t>(b)].last_accuracy();
      });
  const Trial& winner = trials_[static_cast<size_t>(best)];
  report_.best_accuracy = winner.last_accuracy();
  report_.best_config = winner.config();
  report_.jct = sim_.now();

  // Release the whole cluster and settle the bill.
  placement_.Place({});
  for (InstanceId id : nodes_in_controller_) {
    placement_.RemoveNode(id);
  }
  nodes_in_controller_.clear();
  const std::vector<InstanceId> remaining = manager_.ready_instances();
  manager_.Deprovision(remaining);
  for (InstanceId id : remaining) {
    NoteReleased(id);
    report_.trace.Record(sim_.now(), TraceEventType::kInstanceReleased, final_stage, -1, id);
  }
  // Standalone jobs settle against the account ledger (exact, including
  // init-time billing and acquisition minimums). On a shared cluster the
  // account bills every tenant plus the warm pool's idle time, so the
  // per-job report prices this job's attributed slice instead; the service
  // reports the exact aggregate from the account ledger.
  const BillingMeter& meter = shared_ ? job_meter_ : cloud_.meter();
  // Shared-mode per-instance intervals carry their own rate multiplier
  // (spot discount x price trace), so they price at the on-demand rate;
  // per-function records carry none and keep the flat discounted rate —
  // the same convention as SimulatedCloud::Cost().
  const CloudProfile& profile = cloud_.profile();
  const InstanceType billed_type = profile.pricing.billing == BillingModel::kPerFunction
                                       ? profile.BilledInstance()
                                       : profile.instance;
  report_.cost = shared_ ? job_meter_.Price(billed_type, profile.pricing) : cloud_.Cost();
  report_.checkpoint_saves = checkpoint_store_.saves();
  report_.checkpoint_fetches = checkpoint_store_.fetches();
  report_.checkpoint_gb_moved = checkpoint_store_.gb_moved();
  // Ground truth for grading: how many stragglers the provider launched.
  // Cloud-wide, so in shared mode this counts every tenant's stragglers.
  report_.stragglers_injected = cloud_.num_straggler_instances();
  const double provisioned_gpu_seconds =
      meter.TotalInstanceSeconds() * cloud_.profile().gpus_per_instance();
  report_.realized_utilization =
      provisioned_gpu_seconds > 0.0 ? meter.TotalGpuSecondsUsed() / provisioned_gpu_seconds : 0.0;

  // The registry is the source of truth; the report's scalar fields are a
  // view populated here, once, when the run settles.
  report_.preemptions = static_cast<int>(m_.preemptions->value());
  report_.crashes = static_cast<int>(m_.crashes->value());
  report_.trial_restarts = static_cast<int>(m_.trial_restarts->value());
  report_.provision_failures = static_cast<int>(m_.provision_failures->value());
  report_.provision_retries = static_cast<int>(m_.provision_retries->value());
  report_.capacity_shortfalls = static_cast<int>(m_.capacity_shortfalls->value());
  report_.degraded_stages = static_cast<int>(m_.degraded_stages->value());
  report_.replans = static_cast<int>(m_.replans->value());
  report_.checkpoint_retries = static_cast<int>(m_.checkpoint_retries->value());
  report_.stragglers_detected = static_cast<int>(m_.stragglers_detected->value());
  report_.stragglers_quarantined = static_cast<int>(m_.stragglers_quarantined->value());
  report_.straggler_false_positives = static_cast<int>(m_.straggler_false_positives->value());
  report_.straggler_detection_syncs = m_.detection_syncs->value();
  report_.recovery_seconds = m_.recovery_seconds->value();
  report_.straggler_mitigation_seconds = m_.mitigation_seconds->value();
  report_.straggler_slowdown_avoided = m_.slowdown_avoided->value();
  if (profile.spot.enabled) {
    report_.preemption_warnings = static_cast<int>(m_.preemption_warnings->value());
    report_.eager_checkpoints = static_cast<int>(m_.eager_checkpoints->value());
    report_.market_fallbacks = static_cast<int>(m_.market_fallbacks->value());
    report_.spot_rework_seconds = m_.spot_rework_seconds->value();
    // What this usage would have cost on-demand, minus what it billed:
    // the job's realized spot savings (net of price-trace drift; the
    // rework above is its time-side cost).
    const CostBreakdown full_rate = shared_
                                        ? job_meter_.PriceAtFullRate(profile.instance,
                                                                     profile.pricing)
                                        : cloud_.OnDemandEquivalentCost();
    report_.spot_savings = full_rate.Total() - report_.cost.Total();
    obs::Set(m_.spot_savings, report_.spot_savings.dollars());
  }

  // Outcome gauges + traffic counters for the exported snapshot.
  MetricsScope scope = metrics_.scope("executor");
  obs::Set(scope.GetGauge("jct_seconds"), report_.jct);
  obs::Set(scope.GetGauge("cost_dollars"), report_.cost.Total().dollars());
  obs::Set(scope.GetGauge("realized_utilization"), report_.realized_utilization);
  obs::Inc(scope.GetCounter("checkpoint_saves"), report_.checkpoint_saves);
  obs::Inc(scope.GetCounter("checkpoint_fetches"), report_.checkpoint_fetches);
  obs::Set(scope.GetGauge("checkpoint_gb_moved"), report_.checkpoint_gb_moved);
  obs::Set(scope.GetGauge("best_accuracy"), report_.best_accuracy);
  PublishCacheStats(report_.planner_cache, metrics_.scope("planner"));

  report_.metrics = metrics_.Snapshot();
  if (!shared_) {
    // Standalone executors own their cloud, whose registry holds the
    // provisioning/billing metrics; fold them into the one snapshot. On a
    // shared cluster the service owns that registry and reports it itself.
    report_.metrics.Merge(cloud_.metrics().Snapshot());
  }
  report_.timeline = std::move(timeline_);
  // Whatever handles remain are stale (their events fired); Cancel no-ops
  // on those, and drops any straggling pending one with the job.
  for (auto& entry : pending_trial_event_) {
    sim_.Cancel(entry.second);
  }
  pending_trial_event_.clear();
  finished_ = true;
  if (on_done_) {
    on_done_(report_);
  }
}

ExecutionReport ExecutePlan(const ExperimentSpec& spec, const AllocationPlan& plan,
                            const WorkloadSpec& workload, const CloudProfile& cloud_profile,
                            const ExecutorOptions& options) {
  Executor executor(spec, plan, workload, cloud_profile, options);
  return executor.Run();
}

}  // namespace rubberband
