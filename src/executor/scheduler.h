// Scheduling helpers (paper section 5, "Scheduling and placement").
//
// During a stage, if the allocation covers all trials they run in parallel
// with the stage's GPUs divided fairly; otherwise each GPU is assigned to a
// single trial until it completes, and unscheduled trials queue until a
// slot frees.

#ifndef SRC_EXECUTOR_SCHEDULER_H_
#define SRC_EXECUTOR_SCHEDULER_H_

#include <map>
#include <vector>

#include "src/placement/cluster_state.h"

namespace rubberband {

struct StageSchedule {
  // GPUs per running trial (identical for every trial in the stage).
  int gpus_per_trial = 1;
  // Trials that start immediately.
  std::vector<TrialId> running;
  // Trials waiting for a slot (only non-empty when gpus < trials).
  std::vector<TrialId> queued;
};

// Divides `gpus` fairly among `trials` (ids in priority order).
StageSchedule BuildStageSchedule(const std::vector<TrialId>& trials, int gpus);

}  // namespace rubberband

#endif  // SRC_EXECUTOR_SCHEDULER_H_
