// StragglerDetector: observation-driven gray-failure detection.
//
// A persistently slow instance (degraded disk, thermal throttling, a noisy
// neighbour) does not crash — it quietly taxes every gang-synchronous
// iteration it participates in. The detector consumes exactly one signal:
// per-instance iteration latencies, normalized by the trial's expected
// (noise-free) iteration latency, reported at gang-sync boundaries. It has
// no access to the fault injector, the cloud's ground-truth slowdown tags,
// or anything else an oracle would use — deliberately, so the detection
// path exercised in simulation is the one a real deployment could run.
//
// Mechanism: each instance carries an EWMA of its normalized latencies.
// The healthy baseline is the median EWMA across all tracked instances
// (robust: up to half the fleet can straggle without dragging the baseline
// up). An instance is flagged when its EWMA exceeds baseline x threshold
// for k consecutive syncs, after a minimum warmup of observations —
// one-sided hysteresis that keeps transient noise spikes (which revert
// within a sync or two) from triggering quarantine.

#ifndef SRC_EXECUTOR_STRAGGLER_DETECTOR_H_
#define SRC_EXECUTOR_STRAGGLER_DETECTOR_H_

#include <cstdint>
#include <map>

#include "src/cloud/instance_source.h"

namespace rubberband {

struct StragglerDetectorConfig {
  // EWMA smoothing weight of the newest observation.
  double ewma_alpha = 0.3;
  // Flag when ewma > median_ewma * threshold ...
  double threshold = 1.5;
  // ... for this many consecutive syncs ...
  int consecutive_syncs = 3;
  // ... and the instance has at least this many observations (warmup), ...
  int min_observations = 4;
  // ... and at least this many instances are tracked (no meaningful median
  // baseline exists below two).
  int min_instances = 2;
};

class StragglerDetector {
 public:
  explicit StragglerDetector(StragglerDetectorConfig config) : config_(config) {}

  // Records one normalized iteration latency (observed / expected) for the
  // instance. Returns true exactly when this observation crosses the
  // flagging criterion — i.e. once per flagged instance, on the sync that
  // condemns it. Already-flagged instances keep returning false.
  bool Observe(InstanceId id, double normalized_latency);

  // Drops all state for an instance (terminated, quarantined, released).
  void Forget(InstanceId id);

  bool IsFlagged(InstanceId id) const;
  // Current EWMA of an instance (0 if untracked).
  double Ewma(InstanceId id) const;
  // Median EWMA across tracked instances (the healthy baseline; 0 if empty).
  double Baseline() const;
  // Observations the instance had accumulated when it was flagged (the
  // detection latency in syncs); 0 if never flagged.
  int ObservationsAtFlag(InstanceId id) const;

  int num_tracked() const { return static_cast<int>(tracked_.size()); }
  int num_flagged() const { return num_flagged_; }

 private:
  struct Track {
    double ewma = 0.0;
    int observations = 0;
    int consecutive_over = 0;
    bool flagged = false;
    int observations_at_flag = 0;
  };

  StragglerDetectorConfig config_;
  std::map<InstanceId, Track> tracked_;
  int num_flagged_ = 0;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_STRAGGLER_DETECTOR_H_
