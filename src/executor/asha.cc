#include "src/executor/asha.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "src/cloud/simulated_cloud.h"
#include "src/sim/simulation.h"
#include "src/trainer/synthetic_trainer.h"

namespace rubberband {
namespace {

struct RungEntry {
  double accuracy = 0.0;
  int trial = -1;
  bool promoted = false;
};

class AshaRun {
 public:
  AshaRun(const WorkloadSpec& workload, const CloudProfile& cloud, const AshaOptions& options)
      : workload_(workload),
        options_(options),
        sim_(options.seed),
        cloud_(sim_, cloud),
        config_rng_(options.seed ^ 0xA5A5A5A5ULL) {
    // Rung budgets: min_iters * eta^r, capped at max_iters.
    int64_t budget = options_.min_iters;
    while (budget < options_.max_iters) {
      rung_budgets_.push_back(budget);
      budget *= options_.reduction_factor;
    }
    rung_budgets_.push_back(options_.max_iters);
    rungs_.resize(rung_budgets_.size());
    report_.rungs.resize(rung_budgets_.size());
  }

  AshaReport Run() {
    const int gpg = cloud_.profile().gpus_per_instance();
    const int total_gpus = options_.num_workers * options_.gpus_per_trial;
    const int instances = (total_gpus + gpg - 1) / gpg;
    cloud_.RequestInstances(instances, workload_.dataset.size_gb, [this](InstanceId) {
      if (++instances_ready_ == 1) {
        // Workers start as soon as capacity exists; the pool is
        // gang-homogeneous so one instance is enough to begin.
      }
    });
    // Start every worker once the full pool is up (ASHA assumes a fixed
    // cluster that exists for the whole run).
    sim_.ScheduleIn(cloud_.profile().provisioning.MeanReadyLatency() + 1e-9, [this] {
      for (int w = 0; w < options_.num_workers; ++w) {
        OnWorkerFree();
      }
    });
    sim_.Run();

    report_.jct = finish_time_;
    report_.cost = cloud_.Cost();
    return report_;
  }

 private:
  struct Job {
    int trial = -1;
    int rung = 0;
  };

  // ASHA's get_job: prefer the highest-rung promotable result; otherwise
  // sample a new configuration at rung 0.
  Job GetJob() {
    for (int r = static_cast<int>(rungs_.size()) - 2; r >= 0; --r) {
      std::optional<int> promotable = FindPromotable(r);
      if (promotable.has_value()) {
        ++report_.rungs[static_cast<size_t>(r)].promoted;
        report_.promotions.push_back(AshaPromotion{r, *promotable});
        return Job{*promotable, r + 1};
      }
    }
    const HyperparameterConfig config = space_.Sample(config_rng_);
    const int id = static_cast<int>(trials_.size());
    trials_.emplace_back(workload_, config,
                         options_.seed * 6364136223846793005ULL + static_cast<uint64_t>(id));
    ++report_.configurations_sampled;
    return Job{id, 0};
  }

  // Top 1/eta of rung r's completed results, not yet promoted.
  std::optional<int> FindPromotable(int r) {
    auto& rung = rungs_[static_cast<size_t>(r)];
    const int top_k = static_cast<int>(rung.size()) / options_.reduction_factor;
    if (top_k < 1) {
      return std::nullopt;
    }
    std::vector<RungEntry*> sorted;
    sorted.reserve(rung.size());
    for (RungEntry& entry : rung) {
      sorted.push_back(&entry);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const RungEntry* a, const RungEntry* b) { return a->accuracy > b->accuracy; });
    for (int i = 0; i < top_k; ++i) {
      if (!sorted[static_cast<size_t>(i)]->promoted) {
        sorted[static_cast<size_t>(i)]->promoted = true;
        return sorted[static_cast<size_t>(i)]->trial;
      }
    }
    return std::nullopt;
  }

  void OnWorkerFree() {
    if (sim_.now() >= options_.time_limit) {
      if (++workers_done_ == options_.num_workers) {
        cloud_.TerminateAll();
        finish_time_ = sim_.now();
      }
      return;
    }
    const Job job = GetJob();
    SyntheticTrainer& trainer = trials_[static_cast<size_t>(job.trial)];
    trainer.Configure(options_.gpus_per_trial, /*colocated=*/true);

    const int64_t target = rung_budgets_[static_cast<size_t>(job.rung)];
    const int64_t iters = target - trainer.cum_iters();
    Seconds duration = workload_.trial_startup_seconds;
    for (int64_t i = 0; i < iters; ++i) {
      duration += trainer.SampleIterLatency();
    }
    sim_.ScheduleIn(duration, [this, job, iters, duration] {
      SyntheticTrainer& t = trials_[static_cast<size_t>(job.trial)];
      t.Advance(iters);
      const double accuracy = t.Evaluate();
      rungs_[static_cast<size_t>(job.rung)].push_back(RungEntry{accuracy, job.trial, false});
      ++report_.rungs[static_cast<size_t>(job.rung)].completed;
      cloud_.RecordFunctionUsage(options_.gpus_per_trial, duration);
      if (accuracy > report_.best_accuracy) {
        report_.best_accuracy = accuracy;
        report_.best_config = t.config();
        report_.best_config_cum_iters = t.cum_iters();
      }
      OnWorkerFree();
    });
  }

  WorkloadSpec workload_;
  AshaOptions options_;
  Simulation sim_;
  SimulatedCloud cloud_;
  SearchSpace space_;
  Rng config_rng_;

  std::deque<SyntheticTrainer> trials_;
  std::vector<int64_t> rung_budgets_;
  std::vector<std::vector<RungEntry>> rungs_;
  AshaReport report_;
  int instances_ready_ = 0;
  int workers_done_ = 0;
  Seconds finish_time_ = 0.0;
};

}  // namespace

AshaReport RunAsha(const WorkloadSpec& workload, const CloudProfile& cloud,
                   const AshaOptions& options) {
  AshaRun run(workload, cloud, options);
  return run.Run();
}

}  // namespace rubberband
