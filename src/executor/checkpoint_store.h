// Checkpoint object store (paper section 5, "Trial life-cycle").
//
// Due to the symmetric nature of synchronous data-parallel training only
// one worker saves its state; the checkpoint (model, optimizer, LR
// schedule, metadata) is serialized into a shared object store hosted on
// the driver node, and newly instantiated workers fetch it by reference to
// restore. This store models the transfer costs: latency is a fixed
// per-object overhead plus size over the driver link bandwidth, and the
// ledger tracks bytes moved (checkpoint traffic is how migration cost
// scales with model size).

#ifndef SRC_EXECUTOR_CHECKPOINT_STORE_H_
#define SRC_EXECUTOR_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/common/time.h"

namespace rubberband {

struct CheckpointStoreOptions {
  // Driver-node network bandwidth available to checkpoint traffic.
  double bandwidth_gbps = 10.0;
  // Fixed per-transfer overhead (serialization, object-store metadata).
  Seconds base_latency = 0.1;
};

class CheckpointStore {
 public:
  CheckpointStore() = default;
  explicit CheckpointStore(const CheckpointStoreOptions& options) : options_(options) {}

  // Persists trial `id`'s checkpoint of `size_gb`; returns the transfer
  // latency the saving worker pays. Overwrites any previous checkpoint for
  // the trial (only the newest matters).
  Seconds Save(int trial, double size_gb);

  // Latency for a new worker gang to fetch trial `id`'s checkpoint, or
  // nullopt when the store holds no object for the trial (it was never
  // saved, was evicted, or its transfer failed) — a recoverable condition:
  // the executor re-serializes from the driver's in-memory replica and the
  // trial restarts from the last rung boundary instead of aborting.
  std::optional<Seconds> Fetch(int trial);

  // Drops a terminated trial's checkpoint (frees driver memory).
  void Evict(int trial) { sizes_gb_.erase(trial); }

  bool Has(int trial) const { return sizes_gb_.count(trial) > 0; }
  int num_stored() const { return static_cast<int>(sizes_gb_.size()); }
  double stored_gb() const;

  int64_t saves() const { return saves_; }
  int64_t fetches() const { return fetches_; }
  double gb_moved() const { return gb_moved_; }

 private:
  Seconds TransferLatency(double size_gb) const {
    // bandwidth_gbps is in gigaBITS per second.
    return options_.base_latency + size_gb * 8.0 / options_.bandwidth_gbps;
  }

  CheckpointStoreOptions options_;
  std::map<int, double> sizes_gb_;
  int64_t saves_ = 0;
  int64_t fetches_ = 0;
  double gb_moved_ = 0.0;
};

}  // namespace rubberband

#endif  // SRC_EXECUTOR_CHECKPOINT_STORE_H_
