#include "src/executor/straggler_detector.h"

#include <algorithm>
#include <vector>

namespace rubberband {

bool StragglerDetector::Observe(InstanceId id, double normalized_latency) {
  Track& track = tracked_[id];
  // Seed the EWMA with the first observation instead of zero so warmup does
  // not spend min_observations syncs climbing out of an artificial hole.
  track.ewma = track.observations == 0
                   ? normalized_latency
                   : config_.ewma_alpha * normalized_latency +
                         (1.0 - config_.ewma_alpha) * track.ewma;
  ++track.observations;
  if (track.flagged) {
    return false;
  }
  const double baseline = Baseline();
  const bool over = num_tracked() >= config_.min_instances && baseline > 0.0 &&
                    track.ewma > baseline * config_.threshold;
  track.consecutive_over = over ? track.consecutive_over + 1 : 0;
  if (track.consecutive_over >= config_.consecutive_syncs &&
      track.observations >= config_.min_observations) {
    track.flagged = true;
    track.observations_at_flag = track.observations;
    ++num_flagged_;
    return true;
  }
  return false;
}

void StragglerDetector::Forget(InstanceId id) { tracked_.erase(id); }

bool StragglerDetector::IsFlagged(InstanceId id) const {
  auto it = tracked_.find(id);
  return it != tracked_.end() && it->second.flagged;
}

double StragglerDetector::Ewma(InstanceId id) const {
  auto it = tracked_.find(id);
  return it == tracked_.end() ? 0.0 : it->second.ewma;
}

double StragglerDetector::Baseline() const {
  if (tracked_.empty()) {
    return 0.0;
  }
  std::vector<double> ewmas;
  ewmas.reserve(tracked_.size());
  for (const auto& [id, track] : tracked_) {
    ewmas.push_back(track.ewma);
  }
  // Lower median: with an even count this biases the baseline down, which
  // biases detection toward flagging — the conservative direction for a
  // mitigation bounded by an explicit quarantine budget.
  const size_t mid = (ewmas.size() - 1) / 2;
  std::nth_element(ewmas.begin(), ewmas.begin() + static_cast<long>(mid), ewmas.end());
  return ewmas[mid];
}

int StragglerDetector::ObservationsAtFlag(InstanceId id) const {
  auto it = tracked_.find(id);
  return it == tracked_.end() ? 0 : it->second.observations_at_flag;
}

}  // namespace rubberband
