#include "src/executor/checkpoint_store.h"

#include <stdexcept>

namespace rubberband {

Seconds CheckpointStore::Save(int trial, double size_gb) {
  if (size_gb < 0.0) {
    throw std::invalid_argument("negative checkpoint size");
  }
  sizes_gb_[trial] = size_gb;
  ++saves_;
  gb_moved_ += size_gb;
  return TransferLatency(size_gb);
}

std::optional<Seconds> CheckpointStore::Fetch(int trial) {
  auto it = sizes_gb_.find(trial);
  if (it == sizes_gb_.end()) {
    return std::nullopt;
  }
  ++fetches_;
  gb_moved_ += it->second;
  return TransferLatency(it->second);
}

double CheckpointStore::stored_gb() const {
  double total = 0.0;
  for (const auto& [trial, size] : sizes_gb_) {
    total += size;
  }
  return total;
}

}  // namespace rubberband
