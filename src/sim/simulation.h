// Simulation context: owns the event queue, the clock, and the root random
// stream. Passed by reference into every runtime component (cloud provider,
// executor) so they share one timeline.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"

namespace rubberband {

class Simulation {
 public:
  explicit Simulation(uint64_t seed) : rng_(seed) {}

  Seconds now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }
  const EventQueue& queue() const { return queue_; }
  Rng& rng() { return rng_; }

  EventHandle ScheduleAt(Seconds at, EventQueue::Callback fn) {
    return queue_.ScheduleAt(at, std::move(fn));
  }
  EventHandle ScheduleIn(Seconds delay, EventQueue::Callback fn) {
    return queue_.ScheduleAt(now() + delay, std::move(fn));
  }
  // Cancels a pending event (see EventQueue::Cancel); false if it already
  // fired or was already cancelled.
  bool Cancel(EventHandle handle) { return queue_.Cancel(handle); }

  void Run() { queue_.RunAll(); }
  void RunUntil(Seconds until) { queue_.RunUntil(until); }
  size_t RunUntilCapped(Seconds until, size_t max_events) {
    return queue_.RunUntilCapped(until, max_events);
  }

 private:
  EventQueue queue_;
  Rng rng_;
};

}  // namespace rubberband

#endif  // SRC_SIM_SIMULATION_H_
