// Discrete-event queue.
//
// Substrate for the runtime layers: the simulated cloud provider (queuing
// delay, instance initialization) and the executor (trial iterations, stage
// synchronization barriers) both run as events on one queue. Events at equal
// timestamps fire in scheduling order, which makes runs deterministic.
//
// The hot path is allocation-free (DESIGN.md §15): callbacks live inline in
// slab-recycled event nodes (EventCallback, a move-only small-buffer
// callable sized for the largest runtime capture), and the pending set is a
// pairing heap threaded through slab indices — O(1) insert/meld, amortized
// O(log n) pop, no per-event node allocation once the slab is warm.
//
// Determinism contract: events are ordered by the strict total order
// (at, seq) where seq is a monotonic schedule counter, so equal-timestamp
// events fire in scheduling order — exactly the order the previous
// std::priority_queue implementation produced. Cancellation never perturbs
// the order or the clock: a cancelled node is pruned when it surfaces,
// without counting as a run event or advancing `now`.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace rubberband {

// Move-only callable with inline storage for the common event captures.
// Sized so every closure the runtime schedules today (largest: the
// simulated cloud's instance-ready event, ~88 bytes of captures) fits
// without touching the heap; larger callables fall back to a heap box and
// bump a process-wide counter the perf tests assert stays flat on the hot
// path.
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 112;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    Emplace(std::forward<F>(fn));
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  ~EventCallback() { Reset(); }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

  // Destroys the held callable (releasing its captures) and empties this.
  void Reset() {
    if (manage_ != nullptr) {
      manage_(storage_, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // Process-wide count of constructions that exceeded kInlineBytes and had
  // to heap-allocate. The microbench and the allocation-free regression
  // test assert this does not grow across hot-path scheduling.
  static int64_t HeapConstructions() {
    return heap_constructions_.load(std::memory_order_relaxed);
  }

 private:
  using InvokeFn = void (*)(void*);
  // dst == nullptr: destroy the callable at src. Otherwise: relocate
  // (move-construct into dst, destroy src).
  using ManageFn = void (*)(void* src, void* dst);

  template <typename F>
  void Emplace(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); };
      manage_ = [](void* src, void* dst) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        if (dst != nullptr) {
          ::new (dst) D(std::move(*from));
        }
        from->~D();
      };
    } else {
      heap_constructions_.fetch_add(1, std::memory_order_relaxed);
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) = new D(std::forward<F>(fn));
      invoke_ = [](void* s) { (**reinterpret_cast<D**>(s))(); };
      manage_ = [](void* src, void* dst) {
        D* boxed = *reinterpret_cast<D**>(src);
        if (dst != nullptr) {
          *reinterpret_cast<D**>(dst) = boxed;
        } else {
          delete boxed;
        }
      };
    }
  }

  void MoveFrom(EventCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(other.storage_, storage_);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  static std::atomic<int64_t> heap_constructions_;

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

// Ticket for a scheduled event. `seq` doubles as a liveness check: once the
// event runs (or is cancelled) its slab slot is recycled under a new seq,
// so stale handles simply stop matching — Cancel on them returns false.
struct EventHandle {
  static constexpr uint32_t kInvalidSlot = 0xFFFFFFFFu;
  uint32_t slot = kInvalidSlot;
  uint64_t seq = 0;

  bool valid() const { return slot != kInvalidSlot; }
};

class EventQueue {
 public:
  using Callback = EventCallback;

  // Intrinsic kernel counters: plain (non-atomic) because the queue is
  // single-threaded by contract. The tuning service publishes these into
  // its metrics registry; the micro/bench layer reads them directly.
  struct Stats {
    uint64_t scheduled = 0;  // ScheduleAt calls
    uint64_t run = 0;        // callbacks actually invoked
    uint64_t cancelled = 0;  // successful Cancel calls
    size_t depth_high_water = 0;  // max pending (live) events ever queued
  };

  // Schedules `fn` at absolute time `at` and returns a handle that can
  // cancel it while pending. Scheduling in the past is a causality bug in
  // the caller and throws std::logic_error naming both timestamps.
  EventHandle ScheduleAt(Seconds at, Callback fn);

  // Cancels a pending event: its callback is destroyed immediately
  // (releasing captures) and it will never run, never count as a run
  // event, and never advance the clock. Returns false if the handle is
  // invalid, already fired, or already cancelled. The node itself is
  // pruned lazily when it surfaces at the heap root.
  bool Cancel(EventHandle handle);

  // True while the handled event is scheduled and not cancelled.
  bool IsPending(EventHandle handle) const;

  bool empty() const { return live_ == 0; }
  // Pending (scheduled, not yet run, not cancelled) events.
  size_t size() const { return live_; }
  Seconds now() const { return now_; }
  const Stats& stats() const { return stats_; }
  // Slab capacity in nodes (recycling diagnostics; tests assert it stays
  // bounded under steady-state schedule/run churn).
  size_t slab_capacity() const { return nodes_.capacity(); }

  // Pops and runs the earliest event, advancing the clock. Returns false if
  // the queue was empty.
  bool RunNext();

  // Runs events until the queue is empty or the next event is strictly
  // after `until`; the clock ends at min(until, time of last event run).
  void RunUntil(Seconds until);

  // RunUntil with a work bound: stops early once `max_events` events ran —
  // but always finishes the same-timestamp group first, so callers that
  // schedule new events after an early stop observe a clock with no
  // still-pending events at or before it. That invariant is what makes a
  // capped live run replayable by an uncapped one (the serving front door
  // journals operations by timestamp, not by slice boundary). Returns the
  // number of events run; a value < max_events means `until` was reached.
  size_t RunUntilCapped(Seconds until, size_t max_events);

  // Earliest pending event time; only valid when !empty(). Prunes
  // cancelled nodes off the heap root as a side effect.
  Seconds next_time();

  // Drains the queue completely.
  void RunAll();

 private:
  static constexpr uint32_t kNil = EventHandle::kInvalidSlot;

  // Slab-resident event node, threaded into the pairing heap via indices
  // (indices survive slab growth where pointers would dangle).
  struct Node {
    Seconds at = 0.0;
    uint64_t seq = 0;
    uint32_t child = kNil;    // leftmost child in the pairing heap
    uint32_t sibling = kNil;  // next sibling (or next free-list entry)
    bool cancelled = false;
    Callback fn;
  };

  // Strict total order (at, seq): seq is unique, so no two nodes compare
  // equal — pop order is fully determined, matching the old binary heap.
  bool Before(uint32_t a, uint32_t b) const {
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    if (na.at != nb.at) {
      return na.at < nb.at;
    }
    return na.seq < nb.seq;
  }

  uint32_t AllocNode();
  void FreeNode(uint32_t index);
  uint32_t Meld(uint32_t a, uint32_t b);
  // Detaches the root and melds its children (two-pass pairing).
  void PopRoot();
  // Drops cancelled nodes as they surface at the root.
  void PruneCancelledRoot();
  // Pops and runs the root. Precondition: root is live (pruned).
  void RunRoot();

  std::vector<Node> nodes_;
  std::vector<uint32_t> free_;     // recycled slab slots
  std::vector<uint32_t> scratch_;  // pairing-pass buffer, reused across pops
  uint32_t root_ = kNil;
  size_t live_ = 0;  // pending minus cancelled-but-unpruned
  Seconds now_ = 0.0;
  uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace rubberband

#endif  // SRC_SIM_EVENT_QUEUE_H_
