// Discrete-event queue.
//
// Substrate for the runtime layers: the simulated cloud provider (queuing
// delay, instance initialization) and the executor (trial iterations, stage
// synchronization barriers) both run as events on one queue. Events at equal
// timestamps fire in scheduling order, which makes runs deterministic.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace rubberband {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `at`. Scheduling in the past is an
  // error (indicates a causality bug in the caller).
  void ScheduleAt(Seconds at, Callback fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  Seconds now() const { return now_; }

  // Pops and runs the earliest event, advancing the clock. Returns false if
  // the queue was empty.
  bool RunNext();

  // Runs events until the queue is empty or the next event is strictly
  // after `until`; the clock ends at min(until, time of last event run).
  void RunUntil(Seconds until);

  // RunUntil with a work bound: stops early once `max_events` events ran —
  // but always finishes the same-timestamp group first, so callers that
  // schedule new events after an early stop observe a clock with no
  // still-pending events at or before it. That invariant is what makes a
  // capped live run replayable by an uncapped one (the serving front door
  // journals operations by timestamp, not by slice boundary). Returns the
  // number of events run; a value < max_events means `until` was reached.
  size_t RunUntilCapped(Seconds until, size_t max_events);

  // Earliest pending event time; only valid when !empty().
  Seconds next_time() const { return heap_.top().at; }

  // Drains the queue completely.
  void RunAll();

 private:
  struct Event {
    Seconds at;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Seconds now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace rubberband

#endif  // SRC_SIM_EVENT_QUEUE_H_
