#include "src/sim/event_queue.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace rubberband {

std::atomic<int64_t> EventCallback::heap_constructions_{0};

EventHandle EventQueue::ScheduleAt(Seconds at, Callback fn) {
  if (at < now_) {
    char message[160];
    std::snprintf(message, sizeof(message),
                  "EventQueue::ScheduleAt: event scheduled in the past (at=%.9g s < now=%.9g s)",
                  at, now_);
    throw std::logic_error(message);
  }
  const uint32_t index = AllocNode();
  Node& node = nodes_[index];
  node.at = at;
  node.seq = next_seq_++;
  node.child = kNil;
  node.sibling = kNil;
  node.cancelled = false;
  node.fn = std::move(fn);
  root_ = Meld(root_, index);
  ++live_;
  ++stats_.scheduled;
  if (live_ > stats_.depth_high_water) {
    stats_.depth_high_water = live_;
  }
  return EventHandle{index, node.seq};
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!IsPending(handle)) {
    return false;
  }
  Node& node = nodes_[handle.slot];
  node.cancelled = true;
  node.fn.Reset();  // release captures now; the node is pruned lazily
  --live_;
  ++stats_.cancelled;
  return true;
}

bool EventQueue::IsPending(EventHandle handle) const {
  return handle.valid() && handle.slot < nodes_.size() &&
         nodes_[handle.slot].seq == handle.seq && nodes_[handle.slot].fn &&
         !nodes_[handle.slot].cancelled;
}

uint32_t EventQueue::AllocNode() {
  if (!free_.empty()) {
    const uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  nodes_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void EventQueue::FreeNode(uint32_t index) {
  Node& node = nodes_[index];
  node.fn.Reset();
  node.child = kNil;
  node.sibling = kNil;
  node.cancelled = false;
  // Retire the seq so stale handles to this slot stop matching even after
  // the slot is recycled (the next occupant gets a fresh, larger seq).
  node.seq = 0;
  free_.push_back(index);
}

uint32_t EventQueue::Meld(uint32_t a, uint32_t b) {
  if (a == kNil) {
    return b;
  }
  if (b == kNil) {
    return a;
  }
  if (Before(b, a)) {
    std::swap(a, b);
  }
  nodes_[b].sibling = nodes_[a].child;
  nodes_[a].child = b;
  return a;
}

void EventQueue::PopRoot() {
  // Two-pass pairing: meld children left-to-right in pairs, then fold the
  // pairs right-to-left. scratch_ is a member so steady-state pops do not
  // allocate.
  uint32_t child = nodes_[root_].child;
  nodes_[root_].child = kNil;
  scratch_.clear();
  while (child != kNil) {
    const uint32_t a = child;
    const uint32_t b = nodes_[a].sibling;
    uint32_t next = kNil;
    nodes_[a].sibling = kNil;
    if (b != kNil) {
      next = nodes_[b].sibling;
      nodes_[b].sibling = kNil;
    }
    scratch_.push_back(Meld(a, b));
    child = next;
  }
  uint32_t merged = kNil;
  for (size_t i = scratch_.size(); i > 0; --i) {
    merged = Meld(merged, scratch_[i - 1]);
  }
  root_ = merged;
}

void EventQueue::PruneCancelledRoot() {
  while (root_ != kNil && nodes_[root_].cancelled) {
    const uint32_t dead = root_;
    PopRoot();
    FreeNode(dead);
  }
}

void EventQueue::RunRoot() {
  const uint32_t index = root_;
  Node& node = nodes_[index];
  now_ = node.at;
  // Move the callback out and retire the node BEFORE invoking: the callback
  // may schedule new events, which can grow the slab and recycle this slot.
  Callback fn = std::move(node.fn);
  PopRoot();
  FreeNode(index);
  --live_;
  ++stats_.run;
  fn();
}

bool EventQueue::RunNext() {
  PruneCancelledRoot();
  if (root_ == kNil) {
    return false;
  }
  RunRoot();
  return true;
}

void EventQueue::RunUntil(Seconds until) {
  for (;;) {
    PruneCancelledRoot();
    if (root_ == kNil || nodes_[root_].at > until) {
      break;
    }
    RunRoot();
  }
  if (now_ < until) {
    now_ = until;
  }
}

size_t EventQueue::RunUntilCapped(Seconds until, size_t max_events) {
  size_t run = 0;
  for (;;) {
    PruneCancelledRoot();
    if (root_ == kNil || nodes_[root_].at > until) {
      break;
    }
    if (run >= max_events && nodes_[root_].at != now_) {
      break;
    }
    RunRoot();
    ++run;
  }
  if (run < max_events && now_ < until) {
    now_ = until;  // reached `until` with budget to spare, as RunUntil does
  }
  return run;
}

Seconds EventQueue::next_time() {
  PruneCancelledRoot();
  return nodes_[root_].at;
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace rubberband
