#include "src/sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace rubberband {

void EventQueue::ScheduleAt(Seconds at, Callback fn) {
  if (at < now_) {
    throw std::logic_error("event scheduled in the past");
  }
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the event header and move the closure.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = event.at;
  event.fn();
  return true;
}

void EventQueue::RunUntil(Seconds until) {
  while (!heap_.empty() && heap_.top().at <= until) {
    RunNext();
  }
  if (now_ < until) {
    now_ = until;
  }
}

size_t EventQueue::RunUntilCapped(Seconds until, size_t max_events) {
  size_t run = 0;
  while (!heap_.empty() && heap_.top().at <= until &&
         (run < max_events || heap_.top().at == now_)) {
    RunNext();
    ++run;
  }
  if (run < max_events && now_ < until) {
    now_ = until;  // reached `until` with budget to spare, as RunUntil does
  }
  return run;
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace rubberband
