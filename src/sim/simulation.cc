#include "src/sim/simulation.h"

// Simulation is header-only today; this translation unit anchors the target
// and leaves room for non-inline additions.
