// Minimal command-line flag parsing for the tools/ binaries:
// "--key=value", "--key value" and bare "--switch" forms, with typed
// accessors and defaults. Unknown positional arguments are kept in order.

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace rubberband {

class Flags {
 public:
  // Parses argv (excluding argv[0]). Throws std::invalid_argument on a
  // malformed flag (e.g. "---x").
  static Flags Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  int GetInt(const std::string& key, int fallback) const;
  int64_t GetInt64(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  // A bare "--switch" (no value) and "--switch=true/1" are true;
  // "--switch=false/0" is false.
  bool GetBool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were parsed but never read by any accessor — catches typos.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace rubberband

#endif  // SRC_COMMON_FLAGS_H_
