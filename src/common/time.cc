#include "src/common/time.h"

#include <cmath>
#include <cstdio>

namespace rubberband {

std::string FormatDuration(Seconds seconds) {
  long long total = static_cast<long long>(std::llround(seconds));
  const bool negative = total < 0;
  if (negative) {
    total = -total;
  }
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  char buf[32];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld", negative ? "-" : "", h, m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld", negative ? "-" : "", m, s);
  }
  return buf;
}

}  // namespace rubberband
