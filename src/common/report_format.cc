#include "src/common/report_format.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace rubberband {

namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[512];
  const int written = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer, std::min(static_cast<size_t>(written), sizeof(buffer) - 1));
  }
}

}  // namespace

std::string FormatExecutionSummary(const ExecutionReport& report,
                                   const ExecutionFormatOptions& options) {
  std::string out;
  Appendf(out, "\nexecuted: JCT %s, cost %s (compute %s + data %s)\n",
          FormatDuration(report.jct).c_str(), report.cost.Total().ToString().c_str(),
          report.cost.compute.ToString().c_str(), report.cost.data.ToString().c_str());
  Appendf(out, "utilization %.0f%%, preemptions %d, best config %s, accuracy %.1f%%\n",
          100.0 * report.realized_utilization, report.preemptions,
          report.best_config.ToString().c_str(), 100.0 * report.best_accuracy);
  if (options.show_faults) {
    Appendf(out,
            "faults: %d crashes, %d provision failures (%d retried, %d abandoned), "
            "%d checkpoint retries\n",
            report.crashes, report.provision_failures, report.provision_retries,
            report.capacity_shortfalls, report.checkpoint_retries);
    Appendf(out,
            "recovery: %d trial restarts, %.0fs spent recovering, %d degraded stage%s, "
            "%d replan%s%s\n",
            report.trial_restarts, report.recovery_seconds, report.degraded_stages,
            report.degraded_stages == 1 ? "" : "s", report.replans,
            report.replans == 1 ? "" : "s",
            report.jct <= options.deadline ? ", deadline met" : ", deadline MISSED");
  }
  if (options.show_stragglers) {
    Appendf(out,
            "stragglers: %d injected, %d detected (%d false positive%s), "
            "%d quarantined, %.0fs slowdown avoided for %.0fs mitigation cost\n",
            report.stragglers_injected, report.stragglers_detected,
            report.straggler_false_positives, report.straggler_false_positives == 1 ? "" : "s",
            report.stragglers_quarantined, report.straggler_slowdown_avoided,
            report.straggler_mitigation_seconds);
  }
  if (options.show_spot) {
    Appendf(out,
            "spot: saved %s vs on-demand, %d warning%s -> %d eager checkpoint%s, "
            "%.0fs rework, %d market fallback%s\n",
            report.spot_savings.ToString().c_str(), report.preemption_warnings,
            report.preemption_warnings == 1 ? "" : "s", report.eager_checkpoints,
            report.eager_checkpoints == 1 ? "" : "s", report.spot_rework_seconds,
            report.market_fallbacks, report.market_fallbacks == 1 ? "" : "s");
  }
  return out;
}

std::string FormatStageTable(const ExecutionReport& report) {
  std::string out;
  Appendf(out, "\n%-14s %8s %12s %14s\n", "epoch range", "trials", "GPUs/trial", "cluster size");
  for (const StageLogEntry& stage : report.stage_log) {
    Appendf(out, "%4lld-%-9lld %8d %12d %14d\n", static_cast<long long>(stage.start_cum_iters),
            static_cast<long long>(stage.end_cum_iters), stage.num_trials, stage.gpus_per_trial,
            stage.instances);
  }
  return out;
}

std::string FormatServiceJobTable(const ServiceReport& report) {
  std::string out;
  Appendf(out, "\n%-10s %-20s %10s %10s %10s %10s  %s\n", "job", "state", "submit", "wait",
          "jct", "cost", "deadline");
  for (const JobOutcome& job : report.jobs) {
    if (job.state == JobState::kCompleted) {
      Appendf(out, "%-10s %-20s %10s %10s %10s %10s  %s\n", job.name.c_str(),
              ToString(job.state).c_str(), FormatDuration(job.submitted_at).c_str(),
              FormatDuration(job.queue_wait).c_str(), FormatDuration(job.jct).c_str(),
              job.cost.ToString().c_str(), job.met_deadline ? "met" : "MISSED");
    } else {
      Appendf(out, "%-10s %-20s %10s %10s %10s %10s  %s\n", job.name.c_str(),
              ToString(job.state).c_str(), FormatDuration(job.submitted_at).c_str(), "-", "-",
              "-", "-");
    }
  }
  return out;
}

std::string FormatServiceSummary(const ServiceReport& report,
                                 const ServiceFormatOptions& options) {
  std::string out;
  Appendf(out, "\nserved %d/%d jobs (%d rejected), %d deadline miss%s\n", report.completed,
          static_cast<int>(report.jobs.size()), report.rejected, report.deadline_misses,
          report.deadline_misses == 1 ? "" : "es");
  if (report.cancelled > 0 || report.in_flight > 0) {
    // Live-mode interim reports only; absent lines keep the batch CLI
    // output byte-identical to its golden baselines.
    Appendf(out, "in flight %d, cancelled %d\n", report.in_flight, report.cancelled);
  }
  Appendf(out, "makespan %s, mean queue wait %s\n", FormatDuration(report.makespan).c_str(),
          FormatDuration(report.mean_queue_wait).c_str());
  Appendf(out, "total cost %s (%s per completed job), %d instance launches\n",
          report.total_cost.Total().ToString().c_str(),
          report.cost_per_completed_job.ToString().c_str(), report.instance_launches);
  Appendf(out, "warm pool: %lld/%lld warm hits (%.0f%%), %.0fs init saved, %.0fs parked idle\n",
          static_cast<long long>(report.warm.warm_hits),
          static_cast<long long>(report.warm.requests), 100.0 * report.warm.HitRate(),
          report.warm.init_seconds_saved, report.warm.parked_idle_seconds);
  Appendf(out, "aggregate utilization %.0f%%\n", 100.0 * report.aggregate_utilization);
  Appendf(out,
          "planner cache: %lld/%lld plan estimates from memo (%.0f%% hit rate), "
          "%lld stage sims reused\n",
          static_cast<long long>(report.planner_cache.plan_memo_hits),
          static_cast<long long>(report.planner_cache.plan_memo_hits +
                                 report.planner_cache.plan_evaluations),
          100.0 * report.planner_cache.PlanHitRate(),
          static_cast<long long>(report.planner_cache.stage_cache_hits));
  if (options.show_faults) {
    Appendf(out, "faults: %d crashes, %d provision failures, %d replans, %.0fs recovery\n",
            report.total_crashes, report.total_provision_failures, report.total_replans,
            report.total_recovery_seconds);
  }
  if (options.show_stragglers) {
    Appendf(out,
            "stragglers: %d injected fleet-wide, %d detected (%d false positive%s), "
            "%d quarantined, %.0fs mitigation cost\n",
            report.stragglers_injected, report.total_stragglers_detected,
            report.total_straggler_false_positives,
            report.total_straggler_false_positives == 1 ? "" : "s",
            report.total_stragglers_quarantined, report.total_straggler_mitigation_seconds);
  }
  if (options.show_spot) {
    Appendf(out,
            "spot: saved %s vs on-demand fleet-wide, %d preemption%s (%d warned), "
            "%.0fs rework, %d market fallback%s\n",
            report.total_spot_savings.ToString().c_str(), report.total_preemptions,
            report.total_preemptions == 1 ? "" : "s", report.total_preemption_warnings,
            report.total_spot_rework_seconds, report.total_market_fallbacks,
            report.total_market_fallbacks == 1 ? "" : "s");
  }
  return out;
}

}  // namespace rubberband
