// Shared pretty-printing of execution and service reports.
//
// One formatter serves every surface that renders a report — the `execute`
// and `serve` CLI paths and the serving front door's `report` endpoint —
// so the human-readable rendering cannot drift between them. The output is
// byte-identical to the historical CLI printf output (the CLI golden
// baselines pin it).

#ifndef SRC_COMMON_REPORT_FORMAT_H_
#define SRC_COMMON_REPORT_FORMAT_H_

#include <string>

#include "src/executor/executor.h"
#include "src/service/tuning_service.h"

namespace rubberband {

struct ExecutionFormatOptions {
  // Print the fault/recovery summary lines (the CLI enables this when any
  // fault class was injected).
  bool show_faults = false;
  // Print the straggler summary line (injection configured or detections
  // observed).
  bool show_stragglers = false;
  // Print the spot-market summary line (the CLI enables this when the
  // profile's spot market is on). Off keeps non-spot output byte-identical
  // to the golden baselines.
  bool show_spot = false;
  // Absolute deadline for the fault summary's met/MISSED tail.
  Seconds deadline = 0.0;
};

// "executed: JCT ..., cost ..." plus utilization/fault/straggler lines.
std::string FormatExecutionSummary(const ExecutionReport& report,
                                   const ExecutionFormatOptions& options = {});

// The per-stage allocation table ("epoch range  trials  GPUs/trial ...").
std::string FormatStageTable(const ExecutionReport& report);

struct ServiceFormatOptions {
  bool show_faults = false;
  bool show_stragglers = false;
  // Spot totals line; gated like the execution formatter's show_spot.
  bool show_spot = false;
};

// The per-job state table ("job  state  submit  wait  jct  cost  deadline").
std::string FormatServiceJobTable(const ServiceReport& report);

// The fleet summary: served/rejected counts, makespan, cost, warm pool,
// utilization, planner cache, and (optionally) fault/straggler totals.
std::string FormatServiceSummary(const ServiceReport& report,
                                 const ServiceFormatOptions& options = {});

}  // namespace rubberband

#endif  // SRC_COMMON_REPORT_FORMAT_H_
