// A small deterministic thread pool for data-parallel loops.
//
// Built for the planner's candidate search: each greedy iteration evaluates
// an independent batch of candidate plans, so the work is a pure
// ParallelFor(n, fn) with no ordering constraints. Workers are persistent
// (spawned once, parked between batches) and the calling thread
// participates, so a pool of k threads runs k+1 lanes. Work items must be
// pure with respect to their index for results to be independent of
// scheduling; every caller in this codebase writes fn's result into a
// per-index slot, which makes parallel runs bit-identical to serial ones.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rubberband {

class ThreadPool {
 public:
  // `threads` is the total parallelism; the pool spawns threads - 1 workers
  // because the caller participates in every batch. threads <= 1 spawns
  // nothing and ParallelFor degenerates to a serial loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(0), ..., fn(n-1) across the pool and returns when all calls
  // have completed. Indices are claimed atomically, so assignment to lanes
  // is nondeterministic but coverage is exactly once. If any call throws,
  // the first exception is rethrown on the calling thread after the batch
  // drains. Not reentrant: fn must not call ParallelFor on the same pool.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs indices until the batch is exhausted.
  void DrainIndices(int n, const std::function<void(int)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch is posted
  std::condition_variable done_cv_;  // caller: the batch fully drained
  const std::function<void(int)>* fn_ = nullptr;  // valid while caller waits
  int n_ = 0;
  std::atomic<int> next_{0};
  int done_ = 0;     // indices completed in the current batch
  int running_ = 0;  // workers currently inside DrainIndices
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;
};

}  // namespace rubberband

#endif  // SRC_COMMON_THREAD_POOL_H_
