// Deterministic random number generation.
//
// Every stochastic component (latency distributions, hyperparameter
// sampling, straggler injection) draws through an Rng that is explicitly
// seeded, so simulated experiments are reproducible run-to-run and seeds
// can be swept for error bars, as the paper does (3 seeds per experiment).

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace rubberband {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  double Normal(double mean, double stddev);
  double LogNormal(double log_mean, double log_stddev);
  double Exponential(double mean);

  // Derives an independent child stream; used to give each trial/worker its
  // own stream so that adding a component does not perturb the draws made by
  // the others.
  Rng Fork();

  // Keyed stream derivation: a stateless counterpart of Fork() that maps
  // (seed, stream, index) to an independent generator without consuming any
  // draws. Stage `s` of sample `i` always sees the same stream no matter
  // which other stages exist or in which order samples are drawn — the
  // order-independence the stage-incremental plan evaluator relies on.
  static Rng ForStream(uint64_t seed, uint64_t stream, uint64_t index);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rubberband

#endif  // SRC_COMMON_RNG_H_
