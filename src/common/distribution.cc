#include "src/common/distribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rubberband {
namespace {

// Standard normal pdf / cdf, used for the truncated-normal mean.
double NormalPdf(double x) { return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI); }
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

Distribution Distribution::Constant(double value) {
  return Distribution(Kind::kConstant, value, 0.0, 0.0);
}

Distribution Distribution::TruncatedNormal(double mean, double stddev, double min) {
  return Distribution(Kind::kTruncatedNormal, mean, stddev, min);
}

Distribution Distribution::LogNormal(double log_mean, double log_stddev) {
  return Distribution(Kind::kLogNormal, log_mean, log_stddev, 0.0);
}

Distribution Distribution::Exponential(double mean) {
  return Distribution(Kind::kExponential, mean, 0.0, 0.0);
}

Distribution Distribution::Uniform(double lo, double hi) {
  return Distribution(Kind::kUniform, lo, hi, 0.0);
}

Distribution Distribution::Empirical(std::vector<double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("Empirical distribution requires at least one sample");
  }
  return Distribution(std::move(samples));
}

Distribution::Distribution(std::vector<double> samples)
    : kind_(Kind::kEmpirical), samples_(std::move(samples)) {}

double Distribution::Sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kTruncatedNormal: {
      // Rejection sampling; the truncation point is at or below the mean in
      // all our uses, so acceptance is >= 0.5 and this terminates quickly.
      for (int attempt = 0; attempt < 1000; ++attempt) {
        const double x = rng.Normal(a_, b_);
        if (x >= c_) {
          return x;
        }
      }
      return c_;
    }
    case Kind::kLogNormal:
      return rng.LogNormal(a_, b_);
    case Kind::kExponential:
      return rng.Exponential(a_);
    case Kind::kUniform:
      return rng.Uniform(a_, b_);
    case Kind::kEmpirical:
      return samples_[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(samples_.size()) - 1))];
  }
  return 0.0;
}

double Distribution::Mean() const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kTruncatedNormal: {
      if (b_ <= 0.0) {
        return std::max(a_, c_);
      }
      const double alpha = (c_ - a_) / b_;
      const double z = 1.0 - NormalCdf(alpha);
      if (z <= 1e-12) {
        return c_;
      }
      return a_ + b_ * NormalPdf(alpha) / z;
    }
    case Kind::kLogNormal:
      return std::exp(a_ + 0.5 * b_ * b_);
    case Kind::kExponential:
      return a_;
    case Kind::kUniform:
      return 0.5 * (a_ + b_);
    case Kind::kEmpirical:
      return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
             static_cast<double>(samples_.size());
  }
  return 0.0;
}

double Distribution::StdDev() const {
  switch (kind_) {
    case Kind::kConstant:
      return 0.0;
    case Kind::kTruncatedNormal:
      return b_;
    case Kind::kLogNormal: {
      const double v = (std::exp(b_ * b_) - 1.0) * std::exp(2.0 * a_ + b_ * b_);
      return std::sqrt(v);
    }
    case Kind::kExponential:
      return a_;
    case Kind::kUniform:
      return (b_ - a_) / std::sqrt(12.0);
    case Kind::kEmpirical: {
      if (samples_.size() < 2) {
        return 0.0;
      }
      const double mean = Mean();
      double m2 = 0.0;
      for (double s : samples_) {
        m2 += (s - mean) * (s - mean);
      }
      return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
    }
  }
  return 0.0;
}

Distribution Distribution::Scaled(double factor) const {
  if (factor <= 0.0) {
    throw std::invalid_argument("scale factor must be positive");
  }
  switch (kind_) {
    case Kind::kConstant:
      return Constant(a_ * factor);
    case Kind::kTruncatedNormal:
      return TruncatedNormal(a_ * factor, b_ * factor, c_ * factor);
    case Kind::kLogNormal:
      return LogNormal(a_ + std::log(factor), b_);
    case Kind::kExponential:
      return Exponential(a_ * factor);
    case Kind::kUniform:
      return Uniform(a_ * factor, b_ * factor);
    case Kind::kEmpirical: {
      std::vector<double> scaled = samples_;
      for (double& s : scaled) {
        s *= factor;
      }
      return Empirical(std::move(scaled));
    }
  }
  return Constant(0.0);
}

}  // namespace rubberband
