#include "src/common/crc32c.h"

#include <array>

namespace rubberband {

namespace {

// 8 tables of 256 entries: table[0] is the classic byte-at-a-time table for
// the reflected Castagnoli polynomial; table[k] advances a byte through k
// additional zero bytes, which lets the hot loop fold 8 input bytes per
// iteration (slice-by-8).
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t{};

  constexpr Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Crc32cTables kTables{};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Fold 8 bytes per iteration while enough input remains.
  while (size >= 8) {
    const uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                                (static_cast<uint32_t>(p[1]) << 8) |
                                (static_cast<uint32_t>(p[2]) << 16) |
                                (static_cast<uint32_t>(p[3]) << 24));
    crc = kTables.t[7][low & 0xffu] ^ kTables.t[6][(low >> 8) & 0xffu] ^
          kTables.t[5][(low >> 16) & 0xffu] ^ kTables.t[4][low >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rubberband
