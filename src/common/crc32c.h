// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum behind the serving front door's durability layer: every
// write-ahead-journal record carries a CRC of its payload, and snapshot
// files carry a whole-file digest, so a torn write or a flipped bit is
// detected at recovery instead of silently replaying a different history.
// Castagnoli rather than the zlib polynomial because its error-detection
// properties are strictly better at these record sizes and it is what
// storage systems (ext4, leveldb, iSCSI) standardized on — recovery code
// ported elsewhere keeps its checksums meaningful.

#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rubberband {

// Extends `crc` (state from a previous call, 0 for a fresh stream) over
// `size` bytes. Software slice-by-8: no hardware dependency, ~1 GB/s —
// journal records are hundreds of bytes, nowhere near the bottleneck.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace rubberband

#endif  // SRC_COMMON_CRC32C_H_
