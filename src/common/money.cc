#include "src/common/money.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace rubberband {

Money Money::FromDollars(double dollars) {
  return Money(static_cast<int64_t>(std::llround(dollars * 1e6)));
}

Money Money::operator*(double factor) const {
  return Money(static_cast<int64_t>(std::llround(static_cast<double>(micros_) * factor)));
}

std::string Money::ToString() const {
  const int64_t abs_micros = micros_ < 0 ? -micros_ : micros_;
  // Round to cents, half away from zero.
  const int64_t cents = (abs_micros + 5'000) / 10'000;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s$%lld.%02lld", micros_ < 0 ? "-" : "",
                static_cast<long long>(cents / 100), static_cast<long long>(cents % 100));
  return buf;
}

std::ostream& operator<<(std::ostream& os, Money money) { return os << money.ToString(); }

}  // namespace rubberband
