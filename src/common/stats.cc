#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rubberband {

void RunningStats::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  return std::accumulate(values.begin(), values.end(), 0.0) / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  return stats.stddev();
}

}  // namespace rubberband
