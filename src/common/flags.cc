#include "src/common/flags.h"

#include <stdexcept>

namespace rubberband {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    if (arg.size() <= 2 || arg[2] == '-') {
      throw std::invalid_argument("malformed flag: " + arg);
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      continue;
    }
    const std::string key = arg.substr(2);
    // "--key value" when the next token is not itself a flag; bare switch
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[key] = argv[++i];
    } else {
      flags.values_[key] = "";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  read_[key] = true;
  return it->second;
}

int Flags::GetInt(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  read_[key] = true;
  return std::stoi(it->second);
}

int64_t Flags::GetInt64(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  read_[key] = true;
  return std::stoll(it->second);
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  read_[key] = true;
  return std::stod(it->second);
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  read_[key] = true;
  const std::string& value = it->second;
  return value.empty() || value == "true" || value == "1";
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (read_.count(key) == 0) {
      unused.push_back(key);
    }
  }
  return unused;
}

}  // namespace rubberband
