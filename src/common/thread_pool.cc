#include "src/common/thread_pool.h"

namespace rubberband {

ThreadPool::ThreadPool(int threads) {
  const int workers = threads - 1;
  workers_.reserve(workers > 0 ? static_cast<size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::DrainIndices(int n, const std::function<void(int)>& fn) {
  for (;;) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      return;
    }
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) {
        error_ = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (++done_ == n_) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) {
      return;
    }
    seen = generation_;
    if (fn_ == nullptr) {
      continue;  // woke after the caller already finished this batch
    }
    const std::function<void(int)>* fn = fn_;
    const int n = n_;
    ++running_;
    lock.unlock();
    DrainIndices(n, *fn);
    lock.lock();
    if (--running_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  next_.store(0, std::memory_order_relaxed);
  done_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  lock.unlock();

  DrainIndices(n, fn);

  lock.lock();
  // Wait for stragglers: fn_ must stay valid until no worker can still be
  // inside DrainIndices for this generation.
  done_cv_.wait(lock, [&] { return done_ == n_ && running_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace rubberband
