// Exact-arithmetic money type.
//
// Cloud billing math (per-second rates, 60-second minimum charges, per-GB
// ingress fees) accumulates many small charges; representing money as a
// floating-point dollar amount drifts. Money stores micro-dollars in a
// 64-bit integer, which is exact for every charge the simulator produces and
// has ~9.2e12 dollars of headroom.

#ifndef SRC_COMMON_MONEY_H_
#define SRC_COMMON_MONEY_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace rubberband {

class Money {
 public:
  constexpr Money() = default;

  static constexpr Money FromMicros(int64_t micros) { return Money(micros); }
  static constexpr Money FromCents(int64_t cents) { return Money(cents * 10'000); }
  static Money FromDollars(double dollars);

  constexpr int64_t micros() const { return micros_; }
  double dollars() const { return static_cast<double>(micros_) / 1e6; }

  // Renders as e.g. "$12.34" (rounded to cents, half away from zero).
  std::string ToString() const;

  constexpr Money operator+(Money other) const { return Money(micros_ + other.micros_); }
  constexpr Money operator-(Money other) const { return Money(micros_ - other.micros_); }
  constexpr Money operator-() const { return Money(-micros_); }
  constexpr Money& operator+=(Money other) {
    micros_ += other.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money other) {
    micros_ -= other.micros_;
    return *this;
  }

  // Scaling by a dimensionless factor (e.g. rate * seconds). Rounds to the
  // nearest micro-dollar.
  Money operator*(double factor) const;
  Money& operator*=(double factor) {
    *this = *this * factor;
    return *this;
  }

  // Ratio of two amounts (e.g. cost improvement factors).
  double operator/(Money other) const {
    return static_cast<double>(micros_) / static_cast<double>(other.micros_);
  }

  constexpr auto operator<=>(const Money&) const = default;

 private:
  explicit constexpr Money(int64_t micros) : micros_(micros) {}

  int64_t micros_ = 0;
};

std::ostream& operator<<(std::ostream& os, Money money);

inline Money operator*(double factor, Money money) { return money * factor; }

}  // namespace rubberband

#endif  // SRC_COMMON_MONEY_H_
