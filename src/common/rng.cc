#include "src/common/rng.h"

namespace rubberband {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::LogNormal(double log_mean, double log_stddev) {
  std::lognormal_distribution<double> dist(log_mean, log_stddev);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

Rng Rng::Fork() {
  // Mix the next draw so sibling forks are decorrelated.
  const uint64_t child_seed = engine_() * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  return Rng(child_seed);
}

namespace {

// SplitMix64 finalizer: a full-avalanche mix so that nearby (seed, stream,
// index) triples map to uncorrelated child seeds.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::ForStream(uint64_t seed, uint64_t stream, uint64_t index) {
  uint64_t mixed = SplitMix64(seed);
  mixed = SplitMix64(mixed ^ stream);
  mixed = SplitMix64(mixed ^ index);
  return Rng(mixed);
}

}  // namespace rubberband
