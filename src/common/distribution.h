// Latency distributions.
//
// Every node in the execution DAG (SCALE, INIT_INSTANCE, TRAIN, SYNC) has a
// latency distribution attached (paper section 4.2); the profiler fits these
// from instrumentation samples. Distribution is a small value type covering
// the shapes the paper needs: constants for deterministic overheads,
// (truncated) normals for straggler studies, lognormals/exponentials for
// provisioning delay, and empirical bags of profiled samples.

#ifndef SRC_COMMON_DISTRIBUTION_H_
#define SRC_COMMON_DISTRIBUTION_H_

#include <vector>

#include "src/common/rng.h"

namespace rubberband {

class Distribution {
 public:
  // A point mass at `value`.
  static Distribution Constant(double value);

  // Normal(mean, stddev) truncated below at `min` (latencies cannot be
  // negative; the paper's straggler sweep pushes sigma to 10 with mean 4).
  static Distribution TruncatedNormal(double mean, double stddev, double min = 0.0);

  static Distribution LogNormal(double log_mean, double log_stddev);

  static Distribution Exponential(double mean);

  static Distribution Uniform(double lo, double hi);

  // Resamples uniformly from observed values; used by the profiler.
  static Distribution Empirical(std::vector<double> samples);

  double Sample(Rng& rng) const;

  // Analytic mean where available; sample mean for Empirical. For the
  // truncated normal this is the mean of the *truncated* distribution.
  double Mean() const;

  // Standard deviation (analytic where available; sample stddev for
  // Empirical; untruncated stddev for TruncatedNormal, a small upward bias
  // accepted for simplicity).
  double StdDev() const;

  // Scales the distribution by a positive factor (latency at k GPUs =
  // single-GPU latency scaled by the inverse speedup).
  Distribution Scaled(double factor) const;

 private:
  enum class Kind { kConstant, kTruncatedNormal, kLogNormal, kExponential, kUniform, kEmpirical };

  Distribution(Kind kind, double a, double b, double c) : kind_(kind), a_(a), b_(b), c_(c) {}
  explicit Distribution(std::vector<double> samples);

  Kind kind_;
  double a_ = 0.0;  // constant value | mean | log_mean | mean | lo
  double b_ = 0.0;  // - | stddev | log_stddev | - | hi
  double c_ = 0.0;  // - | truncation min | - | - | -
  std::vector<double> samples_;
};

}  // namespace rubberband

#endif  // SRC_COMMON_DISTRIBUTION_H_
