// Simulation time. The discrete-event kernel and everything above it measure
// time as double seconds since experiment start; these helpers keep
// formatting consistent with the paper's "MM:SS" job-completion-time rows.

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <string>

namespace rubberband {

using Seconds = double;

constexpr Seconds Minutes(double m) { return m * 60.0; }
constexpr Seconds Hours(double h) { return h * 3600.0; }

// Formats as "MM:SS" (or "H:MM:SS" beyond an hour), as in Table 2.
std::string FormatDuration(Seconds seconds);

}  // namespace rubberband

#endif  // SRC_COMMON_TIME_H_
