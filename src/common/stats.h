// Summary statistics used throughout the evaluation harness: running
// mean/stddev accumulators for reporting "x ± y" rows and percentile helpers
// for latency analysis.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace rubberband {

class RunningStats {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample standard deviation (n-1 denominator); 0 with fewer than 2 samples.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford's sum of squared deviations.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// p in [0, 100]; linear interpolation between closest ranks. `values` need
// not be sorted. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

}  // namespace rubberband

#endif  // SRC_COMMON_STATS_H_
