// RubberBand public API (umbrella header).
//
// Mirrors the paper's Figure 6 workflow:
//
//   auto spec = rubberband::MakeSha(/*n=*/32, /*r=*/1, /*R=*/50, /*eta=*/3);
//   auto workload = rubberband::ResNet101Cifar10();
//   auto profile = rubberband::ProfileWorkload(workload).profile;
//   rubberband::CloudProfile cloud;  // p3.8xlarge, per-instance billing
//   auto plan = rubberband::CompilePlan(spec, profile, cloud,
//                                       rubberband::Minutes(20));
//   auto report = rubberband::Execute(spec, plan.plan, workload, cloud);

#ifndef SRC_RUBBERBAND_H_
#define SRC_RUBBERBAND_H_

#include "src/cloud/billing.h"
#include "src/cloud/cloud_profile.h"
#include "src/cloud/fault.h"
#include "src/cloud/instance.h"
#include "src/cloud/pricing.h"
#include "src/cloud/provisioning.h"
#include "src/cloud/simulated_cloud.h"
#include "src/cloud/warm_pool.h"
#include "src/common/distribution.h"
#include "src/common/money.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/dag/builder.h"
#include "src/dag/node.h"
#include "src/dag/simulate.h"
#include "src/executor/asha.h"
#include "src/executor/asha_engine.h"
#include "src/executor/executor.h"
#include "src/executor/run_compiled.h"
#include "src/model/profile.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/model/profiler.h"
#include "src/model/scaling.h"
#include "src/placement/controller.h"
#include "src/planner/compiled.h"
#include "src/planner/plan.h"
#include "src/planner/planner.h"
#include "src/planner/multi_job.h"
#include "src/planner/render.h"
#include "src/service/fair_share.h"
#include "src/service/tuning_service.h"
#include "src/spec/compile.h"
#include "src/spec/experiment_spec.h"
#include "src/spec/hyperband.h"
#include "src/spec/ir.h"
#include "src/spec/sha.h"
#include "src/trainer/dataset.h"
#include "src/trainer/model_zoo.h"
#include "src/trainer/search_space.h"
#include "src/trainer/synthetic_trainer.h"

namespace rubberband {

// Compiles an elastic, cost-minimizing resource allocation plan for the
// experiment under the deadline (RubberBand's planner, Algorithm 2).
inline PlannedJob CompilePlan(const ExperimentSpec& spec, const ModelProfile& model,
                              const CloudProfile& cloud, Seconds deadline,
                              const PlannerOptions& options = {}) {
  return PlanGreedy(PlannerInputs{spec, model, cloud, deadline}, options);
}

// Executes a plan end-to-end on the simulated cloud.
inline ExecutionReport Execute(const ExperimentSpec& spec, const AllocationPlan& plan,
                               const WorkloadSpec& workload, const CloudProfile& cloud,
                               const ExecutorOptions& options = {}) {
  return ExecutePlan(spec, plan, workload, cloud, options);
}

}  // namespace rubberband

#endif  // SRC_RUBBERBAND_H_
