// Weighted max-min fair division of the service's GPU capacity among
// running tuning jobs.
//
// Same roll-forward structure as the multi-job planner's deadline split
// (src/planner/multi_job.cc), applied across concurrent tenants instead of
// sequential Hyperband brackets: every job starts with a weight-
// proportional slice; a job demanding less than its slice takes its demand
// and the slack rolls forward into the jobs still contending. Jobs that
// remain bottlenecked at the end split the residual proportionally.

#ifndef SRC_SERVICE_FAIR_SHARE_H_
#define SRC_SERVICE_FAIR_SHARE_H_

#include <vector>

namespace rubberband {

struct ShareRequest {
  // GPUs the job could use right now (its plan's peak stage allocation).
  int demand = 0;
  double weight = 1.0;
};

// Returns one share per request, in order. Shares never exceed demand, sum
// to at most `capacity_gpus`, and are weighted max-min fair: no job can
// gain except by taking from a job with a smaller share-per-weight.
std::vector<int> FairShares(int capacity_gpus, const std::vector<ShareRequest>& requests);

}  // namespace rubberband

#endif  // SRC_SERVICE_FAIR_SHARE_H_
