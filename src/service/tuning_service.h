// Multi-tenant tuning service: a long-running control plane that accepts a
// stream of tuning-job requests and executes them concurrently on one
// shared elastic cluster.
//
// Three mechanisms on top of the single-job pipeline:
//   * admission control — the planner (Algorithm 2) runs at submit time;
//     jobs whose deadline no plan can meet, or whose cheapest feasible plan
//     exceeds their budget, are rejected up front (never silently late).
//     Feasible jobs start immediately when their plan's peak allocation
//     fits in the unreserved capacity, and queue FIFO otherwise; a queued
//     job is re-planned against its remaining time when capacity frees up,
//     and rejected as stale if waiting made the deadline infeasible.
//   * warm-instance reuse — every executor draws machines from one
//     WarmPool, so a finishing job's still-billed instances serve the next
//     job's scale-up with zero queuing/init delay (the Figure 12 tax).
//   * fair sharing — a weighted max-min arbiter caps each running job's
//     cluster slice; executors clamp their per-stage allocations to the cap
//     at stage boundaries. At overcommit 1.0 admission reserves each job's
//     peak, so caps only bind when the operator overcommits capacity.
//
// Everything runs on one discrete-event Simulation, so an entire
// multi-tenant day replays deterministically from a seed.

#ifndef SRC_SERVICE_TUNING_SERVICE_H_
#define SRC_SERVICE_TUNING_SERVICE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/warm_pool.h"
#include "src/executor/asha_engine.h"
#include "src/executor/executor.h"
#include "src/model/profiler.h"
#include "src/planner/evaluator.h"
#include "src/planner/planner.h"
#include "src/spec/compile.h"

namespace rubberband {

// One tenant's request: what to tune, when it arrives, and its SLOs.
struct JobRequest {
  std::string name;
  ExperimentSpec spec;
  WorkloadSpec workload;
  Seconds submit_at = 0.0;  // arrival time on the service timeline
  Seconds deadline = 0.0;   // completion SLO, relative to submission
  Money budget;             // max acceptable predicted cost; <= 0 = unbounded
  double weight = 1.0;      // fair-share weight
  // Per-job retry policy for failed provisioning (backoff schedule and
  // give-up point); the default suits most tenants.
  RetryPolicy retry;
  // Where the executor's initial trial configurations come from. The
  // default replays the executor's historical sampling stream, so requests
  // that never touch this field behave bit-identically to before.
  ConfigSource configs;
  // Set for compiled-ASHA jobs: `spec` is then the planning envelope and
  // execution runs on an AshaEngine instead of a staged Executor.
  std::shared_ptr<const AshaPlan> asha;
};

// A scheduler-level request: a declarative experiment the service compiles
// and admits as one job per compiled unit (a Hyperband experiment becomes
// one job per bracket, all sharing the deadline; every other scheduler
// lowers to a single job).
struct ExperimentRequest {
  std::string name;
  ExperimentIR ir;
  WorkloadSpec workload;
  Seconds submit_at = 0.0;
  Seconds deadline = 0.0;
  Money budget;  // split across units in proportion to their training work
  double weight = 1.0;
  RetryPolicy retry;
};

enum class JobState {
  kPending,             // submitted, arrival not reached yet
  kQueued,              // admitted but waiting for capacity
  kRunning,
  kCompleted,
  kRejectedInfeasible,  // no plan meets the deadline (reported at admission)
  kRejectedOverBudget,  // cheapest feasible plan costs more than the budget
  kRejectedStale,       // queue wait made the deadline infeasible
  kCancelled,           // withdrawn by the tenant before it started (live mode)
};

std::string ToString(JobState state);

struct JobOutcome {
  std::string name;
  JobState state = JobState::kPending;
  AllocationPlan plan;
  Seconds submitted_at = 0.0;
  Seconds started_at = 0.0;
  Seconds finished_at = 0.0;
  Seconds queue_wait = 0.0;
  Seconds deadline_at = 0.0;  // absolute
  bool met_deadline = false;
  Seconds jct = 0.0;  // submission -> completion, queue wait included
  Money cost;         // this job's attributed compute cost
  double best_accuracy = 0.0;
  int preemptions = 0;
  // Spot-market attribution (zero when the market is off): warnings routed
  // to this job, its market switches, what the discount saved it against
  // the on-demand counterfactual, and the training it had to redo.
  int preemption_warnings = 0;
  int market_fallbacks = 0;
  Money spot_savings;
  Seconds spot_rework_seconds = 0.0;
  // Fault attribution: what the provider did to this job and what the
  // recovery cost it (per-tenant blast-radius accounting).
  int crashes = 0;
  int trial_restarts = 0;
  int provision_failures = 0;
  int replans = 0;
  Seconds recovery_seconds = 0.0;
  // Gray-failure attribution (zero unless the service's straggler policy
  // and the cloud's injection are enabled).
  int stragglers_detected = 0;
  int stragglers_quarantined = 0;
  int straggler_false_positives = 0;
  Seconds straggler_mitigation_seconds = 0.0;
  // Largest cluster the job actually held — under an overcommitted arbiter
  // this lands below the plan's peak (the cap binding is observable).
  int peak_instances = 0;
  // The job's raw event trace and phase spans (timeline empty unless
  // ServiceConfig::observe); the Chrome exporter draws each job as its own
  // process (pid = job index + 1).
  ExecutionTrace trace;
  Timeline timeline;
};

struct ServiceConfig {
  CloudProfile cloud;
  // Total GPUs the service provisions across tenants. Admission reserves
  // each running job's plan peak against capacity * overcommit.
  int capacity_gpus = 64;
  // 1.0 = strict reservation (admitted deadlines hold); > 1.0 admits more
  // aggressively and relies on the fair-share arbiter to clamp jobs.
  double overcommit = 1.0;
  WarmPoolConfig warm_pool;  // max_parked = 0 gives the cold baseline
  PlannerOptions planner;
  ProfilerOptions profiler;
  uint64_t seed = 0;
  // Enable each executor's deadline-aware re-planning: once a fault has
  // cost a job time, its remaining stages are re-planned against the time
  // left to its SLO.
  bool replan_on_faults = false;
  // Per-executor persistent-straggler detection/mitigation policy, applied
  // to every tenant (quarantined instances are terminated for real — the
  // warm pool never re-parks known-slow hardware).
  StragglerPolicy straggler;
  // Timeline spans + per-executor latency histograms for every tenant (the
  // Chrome-trace profile). Counters always flow regardless.
  bool observe = false;

  // ---- Fleet-scale knobs (100k-job arrival traces) ---------------------
  // All default off/keep: the small-N service behaves exactly as before.

  // Draw admission/dequeue plans from one PlanEvaluator per distinct
  // (workload, spec) shape instead of one evaluator per job: a fleet of
  // identical tenants plans each shape once and re-plans queued jobs from
  // warm memo caches. Identical plans come out either way (the evaluator is
  // deterministic); only the cache sharing — and therefore the reported
  // planner-cache hit rate — changes, which is why it is opt-in.
  bool share_admission_evaluator = false;
  // Keep each job's raw event trace and timeline in its outcome. Off at
  // fleet scale: 100k retained traces dominate memory.
  bool keep_job_artifacts = true;
  // Publish the per-tenant cost gauge (tenant.<name>.cost_dollars). Off at
  // fleet scale: one registry entry per job name.
  bool per_tenant_metrics = true;
  // Free each executor once its job completes and nothing in flight can
  // reach it (Executor::Quiescent); freed lazily, never from inside the
  // executor's own completion callback. Off only to keep executors
  // inspectable post-run.
  bool release_finished_executors = true;
};

struct ServiceReport {
  std::vector<JobOutcome> jobs;
  int completed = 0;
  int rejected = 0;
  int cancelled = 0;        // withdrawn before start (live mode only)
  int in_flight = 0;        // pending/queued/running (interim reports only)
  int deadline_misses = 0;  // admitted jobs that finished late (never silent)
  Seconds makespan = 0.0;   // time of the last job completion
  Seconds mean_queue_wait = 0.0;
  // Exact aggregate from the shared account ledger: every tenant's compute,
  // init time, acquisition minimums, and the pool's parked idle time.
  CostBreakdown total_cost;
  Money cost_per_completed_job;
  int instance_launches = 0;  // real provisioning events (init paid)
  WarmPoolStats warm;
  double aggregate_utilization = 0.0;  // busy GPU-s / provisioned GPU-s
  // Fleet-wide spot-market totals (sums of the per-job attributions; all
  // zero when the spot market is off).
  int total_preemptions = 0;
  int total_preemption_warnings = 0;
  int total_market_fallbacks = 0;
  Money total_spot_savings;
  Seconds total_spot_rework_seconds = 0.0;
  // Fleet-wide fault totals (sums of the per-job attributions).
  int total_crashes = 0;
  int total_provision_failures = 0;
  int total_replans = 0;
  Seconds total_recovery_seconds = 0.0;
  // Fleet-wide gray-failure totals.
  int stragglers_injected = 0;  // instances the provider launched slow
  int total_stragglers_detected = 0;
  int total_stragglers_quarantined = 0;
  int total_straggler_false_positives = 0;
  Seconds total_straggler_mitigation_seconds = 0.0;
  // Aggregate planner-cache effectiveness: per-job admission/dequeue
  // evaluators plus every executor's fault-replan evaluators. The plan hit
  // rate is the fraction of plan estimates the service never had to
  // recompute.
  PlannerCacheStats planner_cache;
  // Fleet-wide registry snapshot: service.* admission/queue metrics,
  // cloud.* provider metrics (the shared registry), and the merged
  // executor.* metrics of every job.
  MetricsSnapshot metrics;
  // Service-level spans ("job", "queue-wait", one pid per job); empty
  // unless ServiceConfig::observe.
  Timeline timeline;
};

class TuningService {
 public:
  explicit TuningService(const ServiceConfig& config);

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  // Registers a job arrival. All submissions happen before Run().
  void Submit(JobRequest request);

  // Compiles `request.ir` and submits one job per compiled unit (multi-unit
  // experiments suffix each job name with "/<unit>"; the budget splits in
  // proportion to unit work). Works both before Run() and in live mode, and
  // returns the submitted job indices in unit order. A sha experiment
  // submitted this way is indistinguishable from the equivalent Submit().
  std::vector<size_t> SubmitExperiment(const ExperimentRequest& request);

  // Replays the submitted arrival trace to completion and reports. Call
  // once.
  ServiceReport Run();

  // ---- Live (incremental) mode ---------------------------------------
  // The serving front door drives the service request by request instead
  // of replaying a pre-submitted trace: StartLive installs the provider
  // handlers, SubmitLive schedules one arrival, AdvanceUntil moves the
  // simulation clock, and SnapshotReport works mid-flight. A live run is a
  // pure function of (seed, config, the stamped operation sequence), so a
  // journal of SubmitLive/CancelLive/AdvanceUntil calls replays
  // bit-identically — the serving snapshot/restore contract.

  // Switches to live mode (mutually exclusive with Run). Call once, before
  // the first SubmitLive.
  void StartLive();

  // Schedules one arrival at max(request.submit_at, now()) and returns the
  // job's index. The admission decision lands once AdvanceUntil passes the
  // arrival time (same-tick submissions admit in submission order).
  size_t SubmitLive(JobRequest request);

  // Runs events up to `until` (capping work at `max_events` when nonzero;
  // an early stop still finishes the same-timestamp group) and returns the
  // number of events processed.
  size_t AdvanceUntil(Seconds until, size_t max_events = 0);

  // Withdraws a job that has not started (pending or queued). Returns
  // false with `*error` set when the job is running or already settled.
  bool CancelLive(size_t index, std::string* error);

  // Runs the simulation to quiescence (all scheduled arrivals served,
  // all admitted jobs finished) and releases warm capacity.
  void FinishLive();

  // True when nothing is running, queued, or scheduled to arrive.
  bool LiveIdle() const { return running_ == 0 && queue_.empty() && arrivals_outstanding_ == 0; }
  bool HasPendingEvents() const { return !sim_.queue().empty(); }
  Seconds now() const { return sim_.now(); }

  size_t num_jobs() const { return jobs_.size(); }
  const JobOutcome& outcome(size_t index) const { return jobs_.at(index).outcome; }
  const PlannedJob& planned(size_t index) const { return jobs_.at(index).planned; }
  const JobRequest& request(size_t index) const { return jobs_.at(index).request; }
  // Current fair-share cap (recomputes lazily if membership changed).
  int share_cap(size_t index) {
    EnsureShares();
    return jobs_.at(index).share_cap;
  }
  // Index of the most recent job submitted under `name`; npos when unknown.
  static constexpr size_t kNoJob = static_cast<size_t>(-1);
  size_t FindJob(const std::string& name) const;

  // Fleet metrics right now: the service registry merged with the
  // executor.* snapshots of every finished job.
  MetricsSnapshot MetricsNow() const;

  // Interim (live) or final report; unsettled jobs are reported in their
  // current state instead of throwing. Callable repeatedly.
  ServiceReport SnapshotReport();

 private:
  struct Job {
    JobRequest request;
    JobOutcome outcome;
    PlannedJob planned;
    std::unique_ptr<Executor> executor;
    // Exactly one of executor / asha_engine runs a started job; ASHA jobs
    // (request.asha set) execute rung events instead of gang barriers.
    std::unique_ptr<AshaEngine> asha_engine;
    // One evaluator per job, created at admission and kept for the job's
    // lifetime: dequeue re-planning only moves the deadline, so every stage
    // simulation and plan memo entry from admission is reused verbatim.
    std::unique_ptr<PlanEvaluator> evaluator;
    int share_cap = 0;  // current fair-share GPU cap
  };

  void InstallHandlers();
  ServiceReport BuildReport(bool require_settled);
  void OnArrival(size_t index);
  void StartJob(size_t index);
  void OnJobDone(size_t index, const ExecutionReport& report);
  void PumpQueue();
  // Lazily recomputes fair-share caps if the running set changed since the
  // last read. Start/finish only flip a dirty flag (a completion burst at
  // fleet scale re-arbitrates once, not once per event); the recompute
  // itself is the same weighted max-min over the running set, so the caps
  // any reader observes are identical to the eager per-event values.
  void EnsureShares();
  // Frees executors retired on earlier events (never the one whose
  // completion callback is on the stack right now).
  void SweepRetiredExecutors();
  // Overlays the DES kernel's intrinsic counters (sim.events.*, queue
  // depth, callback heap fallbacks) onto a registry snapshot so kernel
  // throughput shows up in --metrics-json without per-event registry costs.
  void InjectSimStats(MetricsSnapshot* snapshot) const;
  // Routes a provider-initiated instance loss (spot reclamation or hardware
  // crash) to the pool or the owning tenant's executor.
  void RouteInstanceLoss(InstanceId id, bool crashed);
  // Routes a reclamation warning: a parked instance leaves the pool (no
  // point holding doomed capacity warm); a held one reaches its tenant's
  // executor for an eager checkpoint.
  void RouteWarning(InstanceId id);
  const ModelProfile& ProfileFor(const WorkloadSpec& workload);
  PlannedJob PlanFor(Job& job, Seconds time_left);
  int ReservationLimit() const;

  ServiceConfig config_;
  Simulation sim_;
  // Declared before the cloud/pool so the shared registry outlives (and is
  // constructible before) the components recording into it.
  MetricsRegistry metrics_;
  MetricsScope svc_;  // "service." scope over metrics_
  SimulatedCloud cloud_;
  WarmPool pool_;
  // Per-job executor.* snapshots, merged as jobs finish (each executor owns
  // its registry so per-job reports never mix).
  MetricsSnapshot executor_metrics_;
  Timeline timeline_;
  std::vector<Job> jobs_;
  std::deque<size_t> queue_;
  std::map<std::string, ModelProfile> profiles_;  // keyed by workload name
  std::map<std::string, size_t> index_by_name_;   // latest submission wins
  // Cached service.* registry handles: per-event GetCounter string lookups
  // were a measurable control-plane cost at fleet scale.
  struct SvcHandles {
    Counter* arrived = nullptr;
    Counter* admitted = nullptr;
    Counter* completed = nullptr;
    Counter* queued = nullptr;
    Counter* rejected_infeasible = nullptr;
    Counter* rejected_over_budget = nullptr;
    Counter* cancelled = nullptr;
    Counter* deadline_misses = nullptr;
    Histogram* queue_wait = nullptr;
  };
  SvcHandles h_;
  // Fair-share state: indices of RUNNING jobs in ascending order (the same
  // order the eager full scan visited them) plus the dirty flag.
  std::vector<size_t> running_set_;
  bool shares_dirty_ = false;
  // Pooled admission evaluators, keyed by workload + spec shape
  // (ServiceConfig::share_admission_evaluator).
  std::map<std::string, std::unique_ptr<PlanEvaluator>> shared_evaluators_;
  // Memoized arrival-time planning decisions: two jobs with the same shape
  // and the same full deadline get the same plan, so a fleet of identical
  // tenants runs the greedy planner once, not 100k times. Dequeue re-plans
  // (time_left < deadline, unbounded distinct values) bypass this cache and
  // go to the shared evaluator's warm memos instead.
  std::map<std::string, PlannedJob> admission_plans_;
  // Completed jobs whose executors await the deferred free.
  std::vector<size_t> retired_executors_;
  // EventCallback heap fallbacks at construction (the sim.* injection
  // reports this service's delta, not the process-wide total).
  int64_t heap_fallback_baseline_ = 0;
  PlannerCacheStats replan_cache_;  // summed from finished executors
  // Cache counters already pushed to the registry: repeated SnapshotReport
  // calls publish only the delta (the registry counters accumulate).
  PlannerCacheStats published_cache_;
  int reserved_gpus_ = 0;
  int running_ = 0;
  int arrivals_outstanding_ = 0;
  Seconds makespan_ = 0.0;
  bool ran_ = false;
  bool live_ = false;
};

}  // namespace rubberband

#endif  // SRC_SERVICE_TUNING_SERVICE_H_
