#include "src/service/tuning_service.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/service/fair_share.h"

namespace rubberband {

std::string ToString(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kCompleted:
      return "COMPLETED";
    case JobState::kRejectedInfeasible:
      return "REJECTED_INFEASIBLE";
    case JobState::kRejectedOverBudget:
      return "REJECTED_OVER_BUDGET";
    case JobState::kRejectedStale:
      return "REJECTED_STALE";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

TuningService::TuningService(const ServiceConfig& config)
    : config_(config), sim_(config.seed), svc_(&metrics_, "service"),
      cloud_(sim_, config.cloud, &metrics_), pool_(sim_, cloud_, config.warm_pool, &metrics_) {
  if (config_.capacity_gpus < config_.cloud.gpus_per_instance()) {
    throw std::invalid_argument("service capacity is smaller than one instance");
  }
  h_.arrived = svc_.GetCounter("jobs_arrived");
  h_.admitted = svc_.GetCounter("jobs_admitted");
  h_.completed = svc_.GetCounter("jobs_completed");
  h_.queued = svc_.GetCounter("jobs_queued");
  h_.rejected_infeasible = svc_.GetCounter("jobs_rejected_infeasible");
  h_.rejected_over_budget = svc_.GetCounter("jobs_rejected_over_budget");
  h_.cancelled = svc_.GetCounter("jobs_cancelled");
  h_.deadline_misses = svc_.GetCounter("deadline_misses");
  h_.queue_wait = svc_.GetHistogram("queue_wait_seconds");
  heap_fallback_baseline_ = EventCallback::HeapConstructions();
}

void TuningService::Submit(JobRequest request) {
  if (ran_) {
    throw std::logic_error("TuningService::Submit after Run");
  }
  if (request.deadline <= 0.0) {
    throw std::invalid_argument("job '" + request.name + "' needs a positive deadline");
  }
  if (request.submit_at < 0.0) {
    throw std::invalid_argument("job '" + request.name + "' has a negative arrival time");
  }
  request.spec.Validate();
  Job job;
  job.outcome.name = request.name;
  job.outcome.submitted_at = request.submit_at;
  job.outcome.deadline_at = request.submit_at + request.deadline;
  job.request = std::move(request);
  index_by_name_[job.outcome.name] = jobs_.size();
  jobs_.push_back(std::move(job));
}

std::vector<size_t> TuningService::SubmitExperiment(const ExperimentRequest& request) {
  const CompiledPlan compiled = CompileExperiment(request.ir);
  const int64_t total_work = compiled.TotalWork();
  std::vector<size_t> indices;
  indices.reserve(compiled.units.size());
  for (const CompiledUnit& unit : compiled.units) {
    JobRequest job;
    // A single-unit experiment keeps the tenant's name verbatim, so a sha
    // experiment is indistinguishable from the equivalent plain Submit.
    job.name = compiled.units.size() > 1 ? request.name + "/" + unit.name : request.name;
    job.spec = unit.spec;
    job.workload = request.workload;
    job.submit_at = request.submit_at;
    job.deadline = request.deadline;
    if (request.budget.dollars() > 0.0 && total_work > 0) {
      job.budget = Money::FromDollars(request.budget.dollars() *
                                      static_cast<double>(unit.spec.TotalWork()) /
                                      static_cast<double>(total_work));
    }
    job.weight = request.weight;
    job.retry = request.retry;
    job.configs = unit.configs;
    job.asha = compiled.asha;
    if (live_) {
      indices.push_back(SubmitLive(std::move(job)));
    } else {
      indices.push_back(jobs_.size());
      Submit(std::move(job));
    }
  }
  return indices;
}

size_t TuningService::FindJob(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? kNoJob : it->second;
}

int TuningService::ReservationLimit() const {
  return static_cast<int>(config_.capacity_gpus * std::max(1.0, config_.overcommit));
}

const ModelProfile& TuningService::ProfileFor(const WorkloadSpec& workload) {
  auto it = profiles_.find(workload.name);
  if (it == profiles_.end()) {
    ProfilerOptions options = config_.profiler;
    options.seed = config_.seed;
    it = profiles_.emplace(workload.name, ProfileWorkload(workload, options).profile).first;
  }
  return it->second;
}

PlannedJob TuningService::PlanFor(Job& job, Seconds time_left) {
  // ASHA jobs plan their envelope *statically*: the engine executes on a
  // fixed worker pool whose size the plan's peak chooses, so an elastic
  // per-stage schedule would promise scaling the engine never does.
  const bool asha = job.request.asha != nullptr;
  if (config_.share_admission_evaluator) {
    // Fleet mode: all jobs with this (workload, spec) shape plan through
    // one evaluator — the first arrival pays the stage simulations, every
    // later arrival and queued-job re-plan is memo hits. Deadlines differ
    // per call, but the plan memo is keyed by allocation, not deadline, so
    // the caches survive set_deadline (the same property the per-job
    // dequeue re-plan has always relied on). ASHA jobs get their own key
    // space: an envelope shaped like a plain SHA job must not inherit its
    // memoized greedy plan.
    const std::string key = (asha ? std::string("asha|") : std::string()) +
                            job.request.workload.name + "|" + job.request.spec.ToString();
    const bool at_arrival = time_left == job.request.deadline;
    std::string plan_key;
    if (at_arrival) {
      // Arrival-time planning is a pure function of (shape, deadline):
      // memoize the whole decision, not just the evaluator caches.
      plan_key = key + "|" + std::to_string(time_left);
      const auto cached = admission_plans_.find(plan_key);
      if (cached != admission_plans_.end()) {
        return cached->second;
      }
    }
    auto it = shared_evaluators_.find(key);
    if (it == shared_evaluators_.end()) {
      PlannerOptions options = config_.planner;
      options.max_total_gpus = std::min(options.max_total_gpus, config_.capacity_gpus);
      const PlannerInputs inputs{job.request.spec, ProfileFor(job.request.workload), config_.cloud,
                                 time_left};
      it = shared_evaluators_.emplace(key, std::make_unique<PlanEvaluator>(inputs, options)).first;
    } else {
      it->second->set_deadline(time_left);
    }
    PlannedJob planned = asha ? PlanStatic(*it->second) : PlanGreedy(*it->second);
    if (at_arrival) {
      admission_plans_.emplace(std::move(plan_key), planned);
    }
    return planned;
  }
  if (job.evaluator == nullptr) {
    PlannerOptions options = config_.planner;
    options.max_total_gpus = std::min(options.max_total_gpus, config_.capacity_gpus);
    const PlannerInputs inputs{job.request.spec, ProfileFor(job.request.workload), config_.cloud,
                               time_left};
    job.evaluator = std::make_unique<PlanEvaluator>(inputs, options);
  } else {
    // Re-plan (dequeue after queueing): only the deadline moved, so the
    // evaluator's caches stay valid and the search is mostly memo hits.
    job.evaluator->set_deadline(time_left);
  }
  return asha ? PlanStatic(*job.evaluator) : PlanGreedy(*job.evaluator);
}

void TuningService::OnArrival(size_t index) {
  SweepRetiredExecutors();
  --arrivals_outstanding_;
  Job& job = jobs_[index];
  if (job.outcome.state == JobState::kCancelled) {
    return;  // withdrawn (live mode) before the arrival event fired
  }
  obs::Inc(h_.arrived);
  job.planned = PlanFor(job, job.request.deadline);
  job.outcome.plan = job.planned.plan;
  if (!job.planned.feasible) {
    job.outcome.state = JobState::kRejectedInfeasible;
    obs::Inc(h_.rejected_infeasible);
    return;
  }
  if (job.request.budget.dollars() > 0.0 &&
      job.planned.estimate.cost_mean.dollars() > job.request.budget.dollars()) {
    job.outcome.state = JobState::kRejectedOverBudget;
    obs::Inc(h_.rejected_over_budget);
    return;
  }
  if (reserved_gpus_ + job.planned.plan.MaxGpus() <= ReservationLimit()) {
    StartJob(index);
  } else {
    job.outcome.state = JobState::kQueued;
    obs::Inc(h_.queued);
    queue_.push_back(index);
  }
}

void TuningService::StartJob(size_t index) {
  Job& job = jobs_[index];
  job.outcome.state = JobState::kRunning;
  job.outcome.started_at = sim_.now();
  job.outcome.queue_wait = sim_.now() - job.outcome.submitted_at;
  obs::Inc(h_.admitted);
  obs::ObserveSeconds(h_.queue_wait, job.outcome.queue_wait);
  reserved_gpus_ += job.planned.plan.MaxGpus();
  ++running_;
  running_set_.insert(std::lower_bound(running_set_.begin(), running_set_.end(), index), index);
  shares_dirty_ = true;

  SharedClusterContext context;
  context.sim = &sim_;
  context.cloud = &cloud_;
  context.source = &pool_;
  context.gpu_cap = [this, index] {
    EnsureShares();
    return jobs_[index].share_cap;
  };

  if (job.request.asha != nullptr) {
    // Compiled ASHA: rung events on a fixed worker pool sized from the
    // envelope's static plan, sharing the service's cloud and warm pool.
    AshaEngineOptions engine_options;
    engine_options.num_workers =
        std::max(1, job.planned.plan.MaxGpus() / job.request.asha->gpus_per_trial);
    engine_options.seed = config_.seed + 1000003 * (static_cast<uint64_t>(index) + 1);
    engine_options.observe = config_.observe;
    job.asha_engine = std::make_unique<AshaEngine>(*job.request.asha, job.request.workload,
                                                   context, engine_options);
    job.asha_engine->Start(
        [this, index](const ExecutionReport& report) { OnJobDone(index, report); });
    return;
  }

  ExecutorOptions options;
  options.seed = config_.seed + 1000003 * (static_cast<uint64_t>(index) + 1);
  options.retry = job.request.retry;
  options.straggler = config_.straggler;
  options.observe = config_.observe;
  options.configs = job.request.configs;
  if (config_.replan_on_faults) {
    options.replan.enabled = true;
    options.replan.deadline = job.outcome.deadline_at;
    options.replan.model = ProfileFor(job.request.workload);
    options.replan.planner = config_.planner;
    options.replan.planner.max_total_gpus =
        std::min(config_.planner.max_total_gpus, config_.capacity_gpus);
  }

  // The newcomer's cap lands before the executor reads it in StartStage:
  // the gpu_cap hook recomputes the dirty shares on first read.
  job.executor = std::make_unique<Executor>(job.request.spec, job.planned.plan,
                                            job.request.workload, context, options);
  job.executor->Start([this, index](const ExecutionReport& report) { OnJobDone(index, report); });
}

void TuningService::OnJobDone(size_t index, const ExecutionReport& report) {
  SweepRetiredExecutors();  // frees executors retired on earlier events
  Job& job = jobs_[index];
  job.outcome.state = JobState::kCompleted;
  job.outcome.finished_at = sim_.now();
  job.outcome.jct = sim_.now() - job.outcome.submitted_at;
  job.outcome.met_deadline = sim_.now() <= job.outcome.deadline_at + 1e-9;
  job.outcome.cost = report.cost.Total();
  job.outcome.best_accuracy = report.best_accuracy;
  job.outcome.preemptions = report.preemptions;
  job.outcome.preemption_warnings = report.preemption_warnings;
  job.outcome.market_fallbacks = report.market_fallbacks;
  job.outcome.spot_savings = report.spot_savings;
  job.outcome.spot_rework_seconds = report.spot_rework_seconds;
  job.outcome.crashes = report.crashes;
  job.outcome.trial_restarts = report.trial_restarts;
  job.outcome.provision_failures = report.provision_failures;
  job.outcome.replans = report.replans;
  job.outcome.recovery_seconds = report.recovery_seconds;
  job.outcome.stragglers_detected = report.stragglers_detected;
  job.outcome.stragglers_quarantined = report.stragglers_quarantined;
  job.outcome.straggler_false_positives = report.straggler_false_positives;
  job.outcome.straggler_mitigation_seconds = report.straggler_mitigation_seconds;
  replan_cache_ += report.planner_cache;
  for (const StageLogEntry& stage : report.stage_log) {
    job.outcome.peak_instances = std::max(job.outcome.peak_instances, stage.instances);
  }
  makespan_ = std::max(makespan_, sim_.now());

  obs::Inc(h_.completed);
  if (!job.outcome.met_deadline) {
    obs::Inc(h_.deadline_misses);
  }
  if (config_.per_tenant_metrics) {
    obs::Set(svc_.GetGauge("tenant." + job.outcome.name + ".cost_dollars"),
             job.outcome.cost.dollars());
  }
  // Fold this job's executor.* metrics into the fleet totals, and keep its
  // trace/timeline for the per-process Chrome export.
  executor_metrics_.Merge(report.metrics);
  if (config_.keep_job_artifacts) {
    job.outcome.trace = report.trace;
    job.outcome.timeline = report.timeline;
  }
  if (config_.observe) {
    const int pid = static_cast<int>(index) + 1;
    timeline_.Record(TimelineSpan{"queue-wait", "service", job.outcome.submitted_at,
                                  job.outcome.started_at, pid});
    timeline_.Record(
        TimelineSpan{"job", "service", job.outcome.started_at, job.outcome.finished_at, pid});
  }

  reserved_gpus_ -= job.planned.plan.MaxGpus();
  --running_;
  running_set_.erase(std::lower_bound(running_set_.begin(), running_set_.end(), index));
  shares_dirty_ = true;
  if (config_.release_finished_executors) {
    // This executor's Finish frame is on the stack right now; park it and
    // free on a later event once nothing in flight can reach it.
    retired_executors_.push_back(index);
  }
  PumpQueue();
  if (running_ == 0 && queue_.empty() && arrivals_outstanding_ == 0) {
    // The trace is fully served: stop paying for warm capacity.
    pool_.Drain();
  }
}

void TuningService::SweepRetiredExecutors() {
  if (retired_executors_.empty()) {
    return;
  }
  size_t kept = 0;
  for (const size_t index : retired_executors_) {
    Job& job = jobs_[index];
    if (job.executor && job.executor->Quiescent()) {
      job.executor.reset();
    } else if (job.asha_engine && job.asha_engine->Quiescent()) {
      job.asha_engine.reset();
    } else if (job.executor || job.asha_engine) {
      // A replacement request is still in flight (fault paths); keep the
      // executor until it quiesces.
      retired_executors_[kept++] = index;
    }
  }
  retired_executors_.resize(kept);
}

void TuningService::PumpQueue() {
  while (!queue_.empty()) {
    const size_t index = queue_.front();
    Job& job = jobs_[index];
    const Seconds time_left = job.outcome.deadline_at - sim_.now();
    PlannedJob replanned = PlanFor(job, time_left);
    if (!replanned.feasible) {
      // Queueing consumed the job's slack; rejecting now is the service's
      // "never silently late" contract — the job is reported, not run.
      job.outcome.state = JobState::kRejectedStale;
      queue_.pop_front();
      continue;
    }
    if (reserved_gpus_ + replanned.plan.MaxGpus() > ReservationLimit()) {
      break;  // FIFO head-of-line blocking; capacity frees as jobs finish
    }
    job.planned = std::move(replanned);
    job.outcome.plan = job.planned.plan;
    queue_.pop_front();
    StartJob(index);
  }
}

void TuningService::EnsureShares() {
  if (!shares_dirty_) {
    return;
  }
  shares_dirty_ = false;
  // running_set_ is maintained in ascending index order — the same order
  // the old eager full-scan visited jobs — so the arbiter sees an
  // identical request vector and produces identical caps.
  std::vector<ShareRequest> requests;
  requests.reserve(running_set_.size());
  for (const size_t i : running_set_) {
    requests.push_back(ShareRequest{jobs_[i].planned.plan.MaxGpus(), jobs_[i].request.weight});
  }
  const std::vector<int> shares = FairShares(config_.capacity_gpus, requests);
  for (size_t k = 0; k < running_set_.size(); ++k) {
    jobs_[running_set_[k]].share_cap = shares[k];
  }
}

void TuningService::RouteInstanceLoss(InstanceId id, bool crashed) {
  if (pool_.OnPreempted(id)) {
    return;  // was parked; the pool dropped it (crash and reclaim alike)
  }
  for (Job& job : jobs_) {
    if (job.executor && !job.executor->finished() && job.executor->OwnsInstance(id)) {
      if (crashed) {
        job.executor->OnCrash(id);
      } else {
        job.executor->OnPreemption(id);
      }
      return;
    }
    if (job.asha_engine && !job.asha_engine->finished() && job.asha_engine->OwnsInstance(id)) {
      if (crashed) {
        job.asha_engine->OnCrash(id);
      } else {
        job.asha_engine->OnPreemption(id);
      }
      return;
    }
  }
  // Lost in a handover window (no tenant held it yet); the provider
  // already closed its billing interval, so there is nothing to clean up.
}

void TuningService::RouteWarning(InstanceId id) {
  if (pool_.OnWarned(id)) {
    return;  // was parked; the pool released it ahead of the reclamation
  }
  for (Job& job : jobs_) {
    if (job.executor && !job.executor->finished() && job.executor->OwnsInstance(id)) {
      job.executor->OnPreemptionWarning(id);
      return;
    }
    if (job.asha_engine && !job.asha_engine->finished() && job.asha_engine->OwnsInstance(id)) {
      job.asha_engine->OnPreemptionWarning(id);
      return;
    }
  }
  // In a handover window (no tenant holds it yet); the reclamation that
  // follows is routed — and cleaned up — by RouteInstanceLoss.
}

void TuningService::InstallHandlers() {
  cloud_.SetPreemptionHandler([this](InstanceId id) { RouteInstanceLoss(id, false); });
  cloud_.SetCrashHandler([this](InstanceId id) { RouteInstanceLoss(id, true); });
  cloud_.SetPreemptionWarningHandler([this](InstanceId id) { RouteWarning(id); });
}

ServiceReport TuningService::Run() {
  if (ran_ || live_) {
    throw std::logic_error("TuningService::Run may only be called once");
  }
  ran_ = true;

  InstallHandlers();
  arrivals_outstanding_ = static_cast<int>(jobs_.size());
  for (size_t i = 0; i < jobs_.size(); ++i) {
    sim_.ScheduleAt(jobs_[i].request.submit_at, [this, i] { OnArrival(i); });
  }
  sim_.Run();
  SweepRetiredExecutors();
  return BuildReport(/*require_settled=*/true);
}

void TuningService::StartLive() {
  if (ran_ || live_) {
    throw std::logic_error("TuningService::StartLive after Run or StartLive");
  }
  if (!jobs_.empty()) {
    throw std::logic_error("TuningService::StartLive must precede all submissions");
  }
  live_ = true;
  InstallHandlers();
}

size_t TuningService::SubmitLive(JobRequest request) {
  if (!live_) {
    throw std::logic_error("TuningService::SubmitLive requires StartLive");
  }
  // Stamp the arrival: never in the simulation's past, so the operation
  // sequence (and therefore a journal replay of it) is causally ordered.
  request.submit_at = std::max(request.submit_at, sim_.now());
  const size_t index = jobs_.size();
  Submit(std::move(request));
  ++arrivals_outstanding_;
  sim_.ScheduleAt(jobs_[index].request.submit_at, [this, index] { OnArrival(index); });
  return index;
}

size_t TuningService::AdvanceUntil(Seconds until, size_t max_events) {
  if (!live_) {
    throw std::logic_error("TuningService::AdvanceUntil requires StartLive");
  }
  if (until < sim_.now()) {
    return 0;
  }
  const size_t run = sim_.RunUntilCapped(
      until, max_events == 0 ? std::numeric_limits<size_t>::max() : max_events);
  SweepRetiredExecutors();
  return run;
}

bool TuningService::CancelLive(size_t index, std::string* error) {
  if (!live_) {
    throw std::logic_error("TuningService::CancelLive requires StartLive");
  }
  if (index >= jobs_.size()) {
    if (error != nullptr) {
      *error = "unknown job index";
    }
    return false;
  }
  Job& job = jobs_[index];
  switch (job.outcome.state) {
    case JobState::kPending:
      // The arrival event is still scheduled; OnArrival sees the cancelled
      // state and no-ops.
      job.outcome.state = JobState::kCancelled;
      obs::Inc(h_.cancelled);
      return true;
    case JobState::kQueued:
      queue_.erase(std::find(queue_.begin(), queue_.end(), index));
      job.outcome.state = JobState::kCancelled;
      obs::Inc(h_.cancelled);
      // Cancelling the queue head may unblock jobs behind it.
      PumpQueue();
      return true;
    default:
      if (error != nullptr) {
        *error = "job '" + job.outcome.name + "' is " + ToString(job.outcome.state) +
                 " and cannot be cancelled";
      }
      return false;
  }
}

void TuningService::FinishLive() {
  if (!live_) {
    throw std::logic_error("TuningService::FinishLive requires StartLive");
  }
  // The last completion's idle check already released warm capacity; the
  // explicit Drain covers traces that end in cancellations or rejections.
  sim_.Run();
  pool_.Drain();
  sim_.Run();
  SweepRetiredExecutors();
}

MetricsSnapshot TuningService::MetricsNow() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  snapshot.Merge(executor_metrics_);
  InjectSimStats(&snapshot);
  return snapshot;
}

void TuningService::InjectSimStats(MetricsSnapshot* snapshot) const {
  // The kernel keeps plain intrinsic counters (src/sim cannot depend on
  // src/obs, and per-event atomics would tax the hot path); the service
  // overlays them as absolute values at snapshot time, so they behave like
  // registry counters in --metrics-json without per-event cost.
  const EventQueue::Stats& stats = sim_.queue().stats();
  snapshot->counters["sim.events.scheduled"] = static_cast<int64_t>(stats.scheduled);
  snapshot->counters["sim.events.run"] = static_cast<int64_t>(stats.run);
  snapshot->counters["sim.events.cancelled"] = static_cast<int64_t>(stats.cancelled);
  snapshot->counters["sim.callback_heap_fallbacks"] =
      EventCallback::HeapConstructions() - heap_fallback_baseline_;
  snapshot->gauges["sim.queue.depth_high_water"] =
      static_cast<double>(stats.depth_high_water);
}

ServiceReport TuningService::SnapshotReport() {
  if (!live_) {
    throw std::logic_error("TuningService::SnapshotReport requires StartLive");
  }
  return BuildReport(/*require_settled=*/false);
}

ServiceReport TuningService::BuildReport(bool require_settled) {
  ServiceReport report;
  report.makespan = makespan_;
  Seconds total_wait = 0.0;
  int started = 0;
  for (Job& job : jobs_) {
    switch (job.outcome.state) {
      case JobState::kCompleted:
        ++report.completed;
        ++started;
        total_wait += job.outcome.queue_wait;
        if (!job.outcome.met_deadline) {
          ++report.deadline_misses;
        }
        break;
      case JobState::kRejectedInfeasible:
      case JobState::kRejectedOverBudget:
      case JobState::kRejectedStale:
        ++report.rejected;
        break;
      case JobState::kCancelled:
        ++report.cancelled;
        break;
      case JobState::kPending:
      case JobState::kQueued:
      case JobState::kRunning:
        if (require_settled) {
          throw std::logic_error("job '" + job.outcome.name +
                                 "' did not settle; the simulation drained early");
        }
        ++report.in_flight;
        break;
    }
    report.total_preemptions += job.outcome.preemptions;
    report.total_preemption_warnings += job.outcome.preemption_warnings;
    report.total_market_fallbacks += job.outcome.market_fallbacks;
    report.total_spot_savings += job.outcome.spot_savings;
    report.total_spot_rework_seconds += job.outcome.spot_rework_seconds;
    report.total_crashes += job.outcome.crashes;
    report.total_provision_failures += job.outcome.provision_failures;
    report.total_replans += job.outcome.replans;
    report.total_recovery_seconds += job.outcome.recovery_seconds;
    report.total_stragglers_detected += job.outcome.stragglers_detected;
    report.total_stragglers_quarantined += job.outcome.stragglers_quarantined;
    report.total_straggler_false_positives += job.outcome.straggler_false_positives;
    report.total_straggler_mitigation_seconds += job.outcome.straggler_mitigation_seconds;
    report.jobs.push_back(job.outcome);
    if (job.evaluator != nullptr) {
      report.planner_cache += job.evaluator->stats();
    }
  }
  for (const auto& entry : shared_evaluators_) {
    report.planner_cache += entry.second->stats();
  }
  report.planner_cache += replan_cache_;
  report.mean_queue_wait = started > 0 ? total_wait / started : 0.0;
  report.total_cost = cloud_.Cost();
  report.cost_per_completed_job =
      report.completed > 0
          ? Money::FromDollars(report.total_cost.Total().dollars() / report.completed)
          : Money();
  report.instance_launches = cloud_.meter().num_acquisitions();
  report.stragglers_injected = cloud_.num_straggler_instances();
  report.warm = pool_.stats();
  const double provisioned =
      cloud_.meter().TotalInstanceSeconds() * config_.cloud.gpus_per_instance();
  report.aggregate_utilization =
      provisioned > 0.0 ? cloud_.meter().TotalGpuSecondsUsed() / provisioned : 0.0;

  // Settle the service-wide registry: outcome gauges, the aggregate
  // planner-cache counters, then one snapshot merged with every job's
  // executor.* metrics.
  obs::Set(svc_.GetGauge("makespan_seconds"), report.makespan);
  obs::Set(svc_.GetGauge("mean_queue_wait_seconds"), report.mean_queue_wait);
  obs::Set(svc_.GetGauge("total_cost_dollars"), report.total_cost.Total().dollars());
  obs::Set(svc_.GetGauge("cost_per_completed_job_dollars"),
           report.cost_per_completed_job.dollars());
  obs::Set(svc_.GetGauge("aggregate_utilization"), report.aggregate_utilization);
  // Fleet spot.* totals need no service-side gauges: every finished job's
  // executor snapshot carries its spot.* family, and the merge below sums
  // them (gauges merge as accumulators) into exactly the report's totals.
  // The registry counters accumulate, so repeated (live) reports publish
  // only what changed since the last publish.
  PlannerCacheStats cache_delta = report.planner_cache;
  cache_delta.plan_evaluations -= published_cache_.plan_evaluations;
  cache_delta.plan_memo_hits -= published_cache_.plan_memo_hits;
  cache_delta.stage_evaluations -= published_cache_.stage_evaluations;
  cache_delta.stage_cache_hits -= published_cache_.stage_cache_hits;
  PublishCacheStats(cache_delta, metrics_.scope("planner"));
  published_cache_ = report.planner_cache;
  report.metrics = metrics_.Snapshot();
  report.metrics.Merge(executor_metrics_);
  InjectSimStats(&report.metrics);
  report.timeline = timeline_;
  return report;
}

}  // namespace rubberband
