#include "src/service/fair_share.h"

#include <algorithm>
#include <utility>

namespace rubberband {

std::vector<int> FairShares(int capacity_gpus, const std::vector<ShareRequest>& requests) {
  const size_t n = requests.size();
  std::vector<int> shares(n, 0);
  std::vector<size_t> active;
  for (size_t i = 0; i < n; ++i) {
    if (requests[i].demand > 0 && requests[i].weight > 0.0) {
      active.push_back(i);
    }
  }

  // Water-filling rounds: any job whose whole demand fits inside its
  // weighted slice of the remaining capacity is satisfied and leaves; its
  // slack rolls forward (multi_job.cc's roll-forward, concurrently).
  int remaining = std::max(0, capacity_gpus);
  bool moved = true;
  while (moved && !active.empty() && remaining > 0) {
    moved = false;
    double total_weight = 0.0;
    for (size_t i : active) {
      total_weight += requests[i].weight;
    }
    std::vector<size_t> still_contending;
    for (size_t i : active) {
      const double slice = remaining * (requests[i].weight / total_weight);
      if (static_cast<double>(requests[i].demand) <= slice) {
        shares[i] = requests[i].demand;
        moved = true;
      } else {
        still_contending.push_back(i);
      }
    }
    for (size_t i : active) {
      if (shares[i] > 0 &&
          std::find(still_contending.begin(), still_contending.end(), i) ==
              still_contending.end()) {
        remaining -= shares[i];
      }
    }
    active = std::move(still_contending);
  }

  // Bottlenecked jobs split what is left proportionally; the integer
  // remainder goes one GPU at a time to the largest fractional parts
  // (ties broken by submission order, keeping the split deterministic).
  if (!active.empty() && remaining > 0) {
    double total_weight = 0.0;
    for (size_t i : active) {
      total_weight += requests[i].weight;
    }
    int handed_out = 0;
    std::vector<std::pair<double, size_t>> fractional;
    for (size_t i : active) {
      const double exact = remaining * (requests[i].weight / total_weight);
      const int base = std::min(requests[i].demand, static_cast<int>(exact));
      shares[i] = base;
      handed_out += base;
      fractional.emplace_back(exact - base, i);
    }
    std::sort(fractional.begin(), fractional.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    int leftover = remaining - handed_out;
    for (const auto& [frac, i] : fractional) {
      if (leftover <= 0) {
        break;
      }
      if (shares[i] < requests[i].demand) {
        ++shares[i];
        --leftover;
      }
    }
  }
  return shares;
}

}  // namespace rubberband
