// Figure 12: simulated cost of executing SHA on 512 ResNet-50 models over
// p3.8xlarge instances, with static and elastic policies, across instance
// initialization latencies of 1 s / 10 s / 100 s and time constraints from
// 90 to 160 minutes.
//
// SHA(n=512, r=4, R=4096), batch 2048, mean per-iteration latency 12 s.
// Expected shape: the elastic advantage is largest at the tightest
// constraints and shrinks as initialization latency grows (scaling up
// mid-job stops being worth its overhead).

#include "bench/bench_util.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(512, 4, 4096, 2);

  for (double init_latency : {1.0, 10.0, 100.0}) {
    Heading("Figure 12 (" + std::to_string(static_cast<int>(init_latency)) +
            " s init latency): cost vs time constraint");
    std::printf("%-18s %14s %14s %10s\n", "constraint (min)", "fixed-cluster", "elastic", "gain");
    for (int minutes = 90; minutes <= 160; minutes += 10) {
      // Batch 2048 keeps 32 samples per GPU even at 64 workers, so this
      // workload scales much further than the batch-512 profile before
      // hitting the communication wall.
      ModelProfile profile = ResNet50Profile(12.0, 1.2);
      profile.scaling = ScalingFunction::FromPoints({{1, 1.0},
                                                     {2, 1.9},
                                                     {4, 3.6},
                                                     {8, 6.8},
                                                     {16, 12.0},
                                                     {32, 16.0},
                                                     {64, 17.0},
                                                     {128, 17.5}});
      const CloudProfile cloud = P38Cloud(5.0, init_latency);
      const Seconds deadline = Minutes(minutes);

      PlannerOptions options;
      options.sim_samples = 5;  // large DAG; keep the sweep brisk
      const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline}, options);
      const PlannedJob elastic = PlanGreedy({spec, profile, cloud, deadline}, options);
      const double gain =
          fixed.estimate.cost_mean.dollars() / elastic.estimate.cost_mean.dollars();
      std::printf("%-18d %14s %14s %9.2fx%s\n", minutes,
                  fixed.estimate.cost_mean.ToString().c_str(),
                  elastic.estimate.cost_mean.ToString().c_str(), gain,
                  fixed.feasible ? "" : "  (static infeasible)");
    }
  }
  return 0;
}
