// Figure 4: scaling of deep learning models with increasing GPUs.
//
// Throughput normalized to a single GPU, measured through the profiler (the
// same instrumentation path RubberBand uses before planning). Expected
// shape: all models sub-linear, BERT worst, with saturation at high worker
// counts.

#include "bench/bench_util.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  Heading("Figure 4: normalized training throughput vs #GPUs");

  const WorkloadSpec workloads[] = {ResNet50(ImageNet(), 512), ResNet101Cifar10(),
                                    ResNet152Cifar100(), BertRte()};
  const int gpu_counts[] = {1, 2, 4, 8, 16};

  std::printf("%-20s", "model");
  for (int gpus : gpu_counts) {
    std::printf("%10d", gpus);
  }
  std::printf("\n");

  for (const WorkloadSpec& workload : workloads) {
    ProfilerOptions options;
    options.iters_per_allocation = 32;
    options.max_gpus = 16;
    const ModelProfile profile = ProfileWorkload(workload, options).profile;
    std::printf("%-20s", workload.name.c_str());
    for (int gpus : gpu_counts) {
      std::printf("%10.2f", profile.scaling.Speedup(gpus));
    }
    std::printf("\n");
  }

  std::printf("\n(ideal linear scaling would read 1, 2, 4, 8, 16)\n");
  return 0;
}
