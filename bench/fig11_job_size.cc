// Figure 11: simulated cost of executing the SHA workload while increasing
// the number of trials, under (a) pay-per-instance and (b) pay-per-function
// billing.
//
// SHA(n=k, r=4, R=508), ResNet-50 batch 512 on p3.8xlarge, 12-minute time
// constraint. Expected shape: elastic always at or below the fixed-cluster
// baseline, with the gap widening as the trial count (and therefore the
// early-stage parallelism the static cluster must provision for) grows.

#include "bench/bench_util.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const Seconds deadline = Minutes(12);
  const int trial_counts[] = {16, 32, 64, 128, 256};

  for (BillingModel billing : {BillingModel::kPerInstance, BillingModel::kPerFunction}) {
    Heading("Figure 11 (" + ToString(billing) + "): cost vs number of trials");
    std::printf("%-10s %14s %14s %10s\n", "trials", "fixed-cluster", "elastic", "gain");
    for (int k : trial_counts) {
      const ExperimentSpec spec = MakeSha(k, 4, 508, 2);
      const ModelProfile profile = ResNet50Profile(4.0, 2.0);
      CloudProfile cloud = P38Cloud();
      cloud.pricing.billing = billing;

      PlannerOptions options;
      options.sim_samples = 10;
      const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline}, options);
      const PlannedJob elastic = PlanGreedy({spec, profile, cloud, deadline}, options);
      const double gain =
          fixed.estimate.cost_mean.dollars() / elastic.estimate.cost_mean.dollars();
      std::printf("%-10d %14s %14s %9.2fx%s\n", k, fixed.estimate.cost_mean.ToString().c_str(),
                  elastic.estimate.cost_mean.ToString().c_str(), gain,
                  fixed.feasible ? "" : "  (deadline infeasible for static)");
    }
  }
  return 0;
}
