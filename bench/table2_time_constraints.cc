// Table 2: cost to complete the workload across various time constraints.
//
// End-to-end benchmark tuning ResNet-101 on CIFAR-10 (batch 1024) with
// SHA(n=32, r=1, R=50, eta=3) on an elastic cluster of on-demand
// p3.8xlarge instances, ~15 s combined provisioning latency (warm pool).
// For each deadline in {20, 30, 40} minutes and each policy in {static,
// naive-elastic, RubberBand}: simulated JCT and cost (planner's
// prediction) and realized JCT, cost and accuracy from end-to-end
// execution, across 3 seeds.
//
// Expected shape: RubberBand's advantage over the fixed cluster is largest
// at the 20-minute deadline (~2x) and fades by 40 minutes; naive elastic
// never beats RubberBand; realized numbers track simulated ones closely;
// accuracy is statistically indistinguishable across policies.

#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = P38Cloud(5.0, 10.0);

  struct Policy {
    const char* name;
    PlannedJob (*plan)(const PlannerInputs&, const PlannerOptions&);
  };
  const Policy policies[] = {{"Static", &PlanStatic},
                             {"Naive elastic", &PlanNaiveElastic},
                             {"RubberBand", &PlanGreedy}};

  Heading("Table 2: cost to complete workload across time constraints "
          "(ResNet-101/CIFAR-10, SHA(32,1,50,eta=3), p3.8xlarge)");
  std::printf("%-14s %-5s %16s %18s %16s %18s %14s\n", "policy", "max", "JCT (sim)",
              "Cost (sim)", "JCT (real)", "Cost (real)", "Acc (%)");

  for (int minutes : {20, 30, 40}) {
    const Seconds deadline = Minutes(minutes);
    for (const Policy& policy : policies) {
      RunningStats jct_sim;
      RunningStats cost_sim;
      RunningStats jct_real;
      RunningStats cost_real;
      RunningStats accuracy;
      bool feasible = true;

      for (uint64_t seed = 1; seed <= 3; ++seed) {
        ProfilerOptions profiler_options;
        profiler_options.seed = seed;
        const ModelProfile profile = ProfileWorkload(workload, profiler_options).profile;

        PlannerOptions planner_options;
        planner_options.seed = seed;
        const PlannedJob job = policy.plan({spec, profile, cloud, deadline}, planner_options);
        feasible = feasible && job.feasible;
        jct_sim.Add(job.estimate.jct_mean);
        cost_sim.Add(job.estimate.cost_mean.dollars());

        ExecutorOptions executor_options;
        executor_options.seed = seed;
        const ExecutionReport report = Execute(spec, job.plan, workload, cloud, executor_options);
        jct_real.Add(report.jct);
        cost_real.Add(report.cost.Total().dollars());
        accuracy.Add(100.0 * report.best_accuracy);
      }

      std::printf("%-14s %-5d %7s +/- %-5s $%6.2f +/- %-5.2f %7s +/- %-5s "
                  "$%6.2f +/- %-5.2f %5.1f +/- %-4.1f%s\n",
                  policy.name, minutes, FormatDuration(jct_sim.mean()).c_str(),
                  FormatDuration(jct_sim.stddev()).c_str(), cost_sim.mean(), cost_sim.stddev(),
                  FormatDuration(jct_real.mean()).c_str(),
                  FormatDuration(jct_real.stddev()).c_str(), cost_real.mean(),
                  cost_real.stddev(), accuracy.mean(), accuracy.stddev(),
                  feasible ? "" : "  (infeasible)");
    }
    std::printf("\n");
  }
  return 0;
}
