// Fault sweep: cost, JCT and deadline-hit-rate of the self-healing
// executor as provider faults get worse.
//
// One fixed SHA job is planned fault-free (the planner models the provider
// the paper assumes: provisioning always succeeds), then executed under
// increasing fault severity — provisioning-failure rate and hardware MTBF
// move together from none to severe — across several seeds per level. The
// "baseline" row runs with no fault profile and no re-planning enabled;
// the 0.00-rate row runs the full self-healing stack with every fault
// class disabled and must match the baseline exactly (the fault layer and
// the re-plan gate are free when nothing fails).
//
//   --json <path>   additionally write the table as JSON (BENCH_faults.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"

namespace rubberband {
namespace {

constexpr Seconds kDeadline = 1800.0;
constexpr int kSeeds = 5;

struct Level {
  const char* label;
  double provision_failure_rate;
  Seconds mtbf;
};

struct Row {
  std::string label;
  double rate = 0.0;
  Seconds mtbf = 0.0;
  int deadline_hits = 0;
  int runs = 0;
  double mean_jct = 0.0;
  double mean_cost = 0.0;
  double mean_crashes = 0.0;
  double mean_provision_failures = 0.0;
  double mean_restarts = 0.0;
  double mean_replans = 0.0;
  double mean_recovery_s = 0.0;
};

Row Sweep(const std::string& label, const ExperimentSpec& spec, const AllocationPlan& plan,
          const WorkloadSpec& workload, const ModelProfile& profile, const Level& level,
          bool self_healing, uint64_t seed_base) {
  Row row;
  row.label = label;
  row.rate = level.provision_failure_rate;
  row.mtbf = level.mtbf;
  row.runs = kSeeds;
  for (int seed = 0; seed < kSeeds; ++seed) {
    CloudProfile cloud = bench::P38Cloud();
    cloud.fault.provision_failure_rate = level.provision_failure_rate;
    cloud.fault.mtbf = level.mtbf;
    ExecutorOptions options;
    options.seed = seed_base + static_cast<uint64_t>(seed);
    if (self_healing) {
      options.replan.enabled = true;
      options.replan.deadline = kDeadline;
      options.replan.model = profile;
    }
    const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
    row.mean_jct += report.jct / kSeeds;
    row.mean_cost += report.cost.Total().dollars() / kSeeds;
    row.mean_crashes += static_cast<double>(report.crashes) / kSeeds;
    row.mean_provision_failures += static_cast<double>(report.provision_failures) / kSeeds;
    row.mean_restarts += static_cast<double>(report.trial_restarts) / kSeeds;
    row.mean_replans += static_cast<double>(report.replans) / kSeeds;
    row.mean_recovery_s += report.recovery_seconds / kSeeds;
    if (report.jct <= kDeadline) {
      ++row.deadline_hits;
    }
  }
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"benchmark\": \"fault_sweep\",\n  \"deadline_s\": %.1f,\n"
               "  \"results\": [\n", kDeadline);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"label\": \"%s\", \"provision_failure_rate\": %.2f, "
                 "\"mtbf_s\": %.0f, \"deadline_hits\": %d, \"runs\": %d, "
                 "\"mean_jct_s\": %.3f, \"mean_cost_usd\": %.4f, "
                 "\"mean_crashes\": %.2f, \"mean_provision_failures\": %.2f, "
                 "\"mean_trial_restarts\": %.2f, \"mean_replans\": %.2f, "
                 "\"mean_recovery_s\": %.1f}%s\n",
                 row.label.c_str(), row.rate, row.mtbf, row.deadline_hits, row.runs,
                 row.mean_jct, row.mean_cost, row.mean_crashes, row.mean_provision_failures,
                 row.mean_restarts, row.mean_replans, row.mean_recovery_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  // Base seed for the per-level seed loop (seeds seed..seed+kSeeds-1); the
  // default reproduces the checked-in BENCH_faults.json exactly.
  const uint64_t seed_base = static_cast<uint64_t>(flags.GetInt64("seed", 1));

  const ExperimentSpec spec = MakeSha(/*num_trials=*/8, /*min_iters=*/2, /*max_iters=*/14,
                                      /*reduction_factor=*/2);
  const WorkloadSpec workload = ResNet101Cifar10();
  ProfilerOptions profiler_options;
  profiler_options.seed = 1;
  const ModelProfile profile = ProfileWorkload(workload, profiler_options).profile;
  const PlannedJob job = PlanGreedy({spec, profile, bench::P38Cloud(), kDeadline});

  bench::Heading("fault sweep: self-healing executor vs provider fault severity");
  std::printf("plan %s, deadline %s, %d seeds per level\n\n", job.plan.ToString().c_str(),
              FormatDuration(kDeadline).c_str(), kSeeds);
  std::printf("%10s %6s %8s %9s %10s %9s %8s %9s %9s %8s %10s\n", "level", "rate", "mtbf",
              "deadline", "mean JCT", "mean $", "crashes", "prov.fail", "restarts", "replans",
              "recovery");

  std::vector<Row> rows;
  rows.push_back(Sweep("baseline", spec, job.plan, workload, profile,
                       Level{"baseline", 0.0, 0.0}, /*self_healing=*/false, seed_base));
  const Level levels[] = {
      {"none", 0.0, 0.0},
      {"mild", 0.1, 3600.0},
      {"moderate", 0.3, 1200.0},
      {"severe", 0.5, 600.0},
  };
  for (const Level& level : levels) {
    rows.push_back(Sweep(level.label, spec, job.plan, workload, profile, level,
                         /*self_healing=*/true, seed_base));
  }
  for (const Row& row : rows) {
    std::printf("%10s %6.2f %8.0f %6d/%-2d %10s %9.2f %8.1f %9.1f %9.1f %8.1f %9.0fs\n",
                row.label.c_str(), row.rate, row.mtbf, row.deadline_hits, row.runs,
                FormatDuration(row.mean_jct).c_str(), row.mean_cost, row.mean_crashes,
                row.mean_provision_failures, row.mean_restarts, row.mean_replans,
                row.mean_recovery_s);
  }
  if (rows[0].mean_jct != rows[1].mean_jct || rows[0].mean_cost != rows[1].mean_cost) {
    std::fprintf(stderr,
                 "error: zero-fault row diverged from the fault-free baseline "
                 "(the fault layer is supposed to be free when disabled)\n");
    return 1;
  }
  std::printf("\nzero-fault row matches the fault-free baseline exactly\n");

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, rows)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
