// Table 4: cost to complete the workload across deep learning models.
//
// Fixed-cluster vs RubberBand, end-to-end, for ResNet-101 on CIFAR-10
// (20-minute deadline), ResNet-152 on CIFAR-100 (1 hour) and BERT on RTE
// (20 minutes), 3 seeds each. Expected shape: RubberBand cheaper on every
// model; the margin depends on how each model's scaling saturates.

#include "bench/bench_util.h"
#include "src/common/stats.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  struct Case {
    WorkloadSpec workload;
    ExperimentSpec spec;
    double minutes;
  };
  const Case cases[] = {
      {ResNet101Cifar10(), MakeSha(32, 1, 50, 3), 20.0},
      {ResNet152Cifar100(), MakeSha(32, 1, 120, 3), 60.0},
      {BertRte(), MakeSha(32, 2, 40, 3), 20.0},
  };

  const CloudProfile cloud = P38Cloud(5.0, 10.0);

  Heading("Table 4: realized cost across models (fixed cluster vs RubberBand)");
  std::printf("%-22s %-9s %20s %20s %8s\n", "model", "time", "Fixed", "RubberBand", "gain");

  for (const Case& c : cases) {
    RunningStats fixed_cost;
    RunningStats elastic_cost;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ProfilerOptions profiler_options;
      profiler_options.seed = seed;
      const ModelProfile profile = ProfileWorkload(c.workload, profiler_options).profile;
      const PlannerInputs inputs{c.spec, profile, cloud, Minutes(c.minutes)};

      PlannerOptions planner_options;
      planner_options.seed = seed;
      const PlannedJob fixed = PlanStatic(inputs, planner_options);
      const PlannedJob elastic = PlanGreedy(inputs, planner_options);

      ExecutorOptions executor_options;
      executor_options.seed = seed;
      fixed_cost.Add(
          Execute(c.spec, fixed.plan, c.workload, cloud, executor_options).cost.Total().dollars());
      elastic_cost.Add(Execute(c.spec, elastic.plan, c.workload, cloud, executor_options)
                           .cost.Total()
                           .dollars());
    }
    std::printf("%-22s %-9s $%8.2f +/- %-5.2f $%8.2f +/- %-5.2f %7.2fx\n",
                c.workload.name.c_str(), FormatDuration(Minutes(c.minutes)).c_str(),
                fixed_cost.mean(), fixed_cost.stddev(), elastic_cost.mean(),
                elastic_cost.stddev(), fixed_cost.mean() / elastic_cost.mean());
  }
  return 0;
}
