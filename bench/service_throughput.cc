// Service throughput: the multi-tenant control plane replaying the same
// job-arrival trace cold (every release terminates) and warm (releases
// park in the WarmPool) at 1, 4, and 16 jobs.
//
// The cold column is what N independent RubberBand runs would pay; the
// warm column is the service's pitch — successor jobs inherit their
// predecessors' still-billed instances, so real provisioning events (and
// the init time billed with them) drop as the trace gets busier.
//
// A second, fleet-scale section replays 1k/10k/100k-job synthetic arrival
// traces against a wide cluster with the fleet knobs on (shared admission
// evaluator, no retained traces, no per-tenant gauges) and reports control
// plane throughput: jobs/s and DES events/s of wall clock. This is the
// proof row for the allocation-free kernel — the same table also reports
// EventCallback heap fallbacks, which must stay zero.
//
//   --json <path>   additionally write the table as JSON (BENCH_service.json)
//   --seed <n>      service RNG seed (default 7, the checked-in baseline)
//   --fleet <n>     run ONLY the n-job fleet trace (the --perf CI tier)
//   --budget-s <s>  with --fleet: fail (exit 1) if wall clock exceeds s

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"

namespace rubberband {
namespace {

struct Row {
  int jobs = 0;
  std::string mode;
  int completed = 0;
  int launches = 0;
  double hit_rate = 0.0;
  Seconds makespan = 0.0;
  Seconds mean_queue_wait = 0.0;
  double total_cost = 0.0;
  double cost_per_job = 0.0;
};

ServiceReport Replay(int num_jobs, const WarmPoolConfig& pool, uint64_t seed) {
  ServiceConfig config;
  config.cloud = bench::P38Cloud(/*queuing_seconds=*/30.0, /*init_seconds=*/120.0);
  // One 4-GPU job slot: arrivals burst in and the queue serializes them,
  // so every job-to-job hand-off is a warm-reuse opportunity.
  config.capacity_gpus = 4;
  config.warm_pool = pool;
  config.seed = seed;

  TuningService service(config);
  for (int i = 0; i < num_jobs; ++i) {
    JobRequest job;
    job.name = "job-" + std::to_string(i);
    job.spec = MakeSha(/*num_trials=*/8, /*min_iters=*/2, /*max_iters=*/14,
                       /*reduction_factor=*/2);
    job.workload = ResNet101Cifar10();
    job.submit_at = 60.0 * i;
    job.deadline = 1800.0 * num_jobs;  // covers the serialized backlog
    service.Submit(job);
  }
  return service.Run();
}

struct FleetRow {
  int jobs = 0;  // submissions: jobs (sha trace) or experiments (mixed trace)
  std::string mode = "sha";
  int completed = 0;
  int rejected = 0;
  double wall_s = 0.0;
  double jobs_per_s = 0.0;
  int64_t events = 0;
  double events_per_s = 0.0;
  int64_t heap_fallbacks = 0;
  double hit_rate = 0.0;
  Seconds makespan = 0.0;
};

// Mixed-scheduler fleet shape: submissions cycle through every scheduler
// kind the plan compiler lowers, so the trace also covers experiment
// compilation, bracket fan-out, and the ASHA engine's rung events.
ExperimentIR FleetIr(int i) {
  ExperimentIR ir;
  ir.reduction_factor = 2;
  switch (i % 5) {
    case 0:
      ir.scheduler = SchedulerKind::kSha;
      ir.num_trials = 4;
      ir.max_iters = 4;
      break;
    case 1:
      ir.scheduler = SchedulerKind::kHyperband;  // 3 brackets per experiment
      ir.max_iters = 4;
      break;
    case 2:
      ir.scheduler = SchedulerKind::kAsha;
      ir.num_trials = 4;
      ir.max_iters = 4;
      break;
    case 3:
      ir.scheduler = SchedulerKind::kRandom;
      ir.num_trials = 3;
      ir.max_iters = 4;
      break;
    default:
      ir.scheduler = SchedulerKind::kGrid;
      ir.max_iters = 4;
      ir.grid = GridShape{2, 1, 1};
      break;
  }
  return ir;
}

// Fleet trace: many small jobs arriving at a steady rate on a wide shared
// cluster. The job shape is deliberately tiny (a few trials, 1..4
// iterations) so the trace exercises control-plane and kernel throughput —
// admission, fair-share arbitration, queue pumping, warm handoffs — rather
// than simulated training time. The sha trace submits the legacy JobRequest
// shape; the mixed trace submits compiled experiments cycling all five
// scheduler kinds (hyperband experiments fan out into three bracket jobs).
FleetRow FleetReplay(int num_jobs, uint64_t seed, bool mixed = false) {
  ServiceConfig config;
  config.cloud = bench::P38Cloud(/*queuing_seconds=*/30.0, /*init_seconds=*/120.0);
  config.capacity_gpus = 1024;
  config.warm_pool.max_parked = 256;
  config.warm_pool.max_idle_seconds = 600.0;
  config.seed = seed;
  config.share_admission_evaluator = true;
  config.keep_job_artifacts = false;
  config.per_tenant_metrics = false;

  TuningService service(config);
  for (int i = 0; i < num_jobs; ++i) {
    if (mixed) {
      ExperimentRequest request;
      request.name = "fleet-" + std::to_string(i);
      request.ir = FleetIr(i);
      request.workload = ResNet101Cifar10();
      request.submit_at = 2.0 * i;  // steady arrivals below the service rate
      request.deadline = 4.0 * 3600.0;
      service.SubmitExperiment(request);
    } else {
      JobRequest job;
      job.name = "fleet-" + std::to_string(i);
      job.spec = MakeSha(/*num_trials=*/4, /*min_iters=*/1, /*max_iters=*/4,
                         /*reduction_factor=*/2);
      job.workload = ResNet101Cifar10();
      job.submit_at = 2.0 * i;  // steady arrivals below the service rate
      job.deadline = 4.0 * 3600.0;
      service.Submit(job);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  const ServiceReport report = service.Run();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

  FleetRow row;
  row.jobs = num_jobs;
  row.mode = mixed ? "mixed" : "sha";
  row.completed = report.completed;
  row.rejected = report.rejected;
  row.wall_s = wall.count();
  row.jobs_per_s = row.wall_s > 0.0 ? num_jobs / row.wall_s : 0.0;
  const auto events = report.metrics.counters.find("sim.events.run");
  row.events = events != report.metrics.counters.end() ? events->second : 0;
  row.events_per_s = row.wall_s > 0.0 ? static_cast<double>(row.events) / row.wall_s : 0.0;
  const auto fallbacks = report.metrics.counters.find("sim.callback_heap_fallbacks");
  row.heap_fallbacks = fallbacks != report.metrics.counters.end() ? fallbacks->second : 0;
  row.hit_rate = report.warm.HitRate();
  row.makespan = report.makespan;
  return row;
}

Row MakeRow(int jobs, const std::string& mode, const ServiceReport& report) {
  Row row;
  row.jobs = jobs;
  row.mode = mode;
  row.completed = report.completed;
  row.launches = report.instance_launches;
  row.hit_rate = report.warm.HitRate();
  row.makespan = report.makespan;
  row.mean_queue_wait = report.mean_queue_wait;
  row.total_cost = report.total_cost.Total().dollars();
  row.cost_per_job = report.cost_per_completed_job.dollars();
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               const std::vector<FleetRow>& fleet) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"benchmark\": \"service_throughput\",\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"jobs\": %d, \"mode\": \"%s\", \"completed\": %d, "
                 "\"instance_launches\": %d, \"warm_hit_rate\": %.4f, "
                 "\"makespan_s\": %.1f, \"mean_queue_wait_s\": %.1f, "
                 "\"total_cost_usd\": %.2f, \"cost_per_job_usd\": %.2f}%s\n",
                 row.jobs, row.mode.c_str(), row.completed, row.launches, row.hit_rate,
                 row.makespan, row.mean_queue_wait, row.total_cost, row.cost_per_job,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"fleet\": [\n");
  for (size_t i = 0; i < fleet.size(); ++i) {
    const FleetRow& row = fleet[i];
    std::fprintf(file,
                 "    {\"jobs\": %d, \"mode\": \"%s\", \"completed\": %d, \"rejected\": %d, "
                 "\"wall_s\": %.3f, \"jobs_per_s\": %.0f, \"events\": %lld, "
                 "\"events_per_s\": %.0f, \"callback_heap_fallbacks\": %lld, "
                 "\"warm_hit_rate\": %.4f, \"sim_makespan_s\": %.1f}%s\n",
                 row.jobs, row.mode.c_str(), row.completed, row.rejected, row.wall_s,
                 row.jobs_per_s, static_cast<long long>(row.events), row.events_per_s,
                 static_cast<long long>(row.heap_fallbacks), row.hit_rate, row.makespan,
                 i + 1 < fleet.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

void PrintFleetRow(const FleetRow& row) {
  std::printf("%7d %6s %9d %8d %8.2fs %9.0f %11lld %12.2fM %9lld %8.0f%%\n", row.jobs,
              row.mode.c_str(), row.completed, row.rejected, row.wall_s, row.jobs_per_s,
              static_cast<long long>(row.events), row.events_per_s / 1e6,
              static_cast<long long>(row.heap_fallbacks), 100.0 * row.hit_rate);
}

void FleetHeading() {
  bench::Heading("fleet traces: control-plane + DES kernel throughput");
  std::printf("%7s %6s %9s %8s %9s %9s %11s %13s %9s %9s\n", "jobs", "mode", "completed",
              "rejected", "wall", "jobs/s", "events", "events/s", "heapfall", "hit rate");
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed", 7));

  if (flags.Has("fleet")) {
    // CI perf tier: one fleet trace under a wall-clock budget; any
    // EventCallback heap fallback is a hot-path allocation regression.
    const int jobs = static_cast<int>(flags.GetInt64("fleet", 10000));
    FleetHeading();
    // The sha trace gates the legacy control-plane path; the mixed trace
    // (one fifth the submissions) gates the compiled-experiment path —
    // compilation, bracket fan-out, and ASHA rung events included.
    const std::vector<FleetRow> rows = {FleetReplay(jobs, seed),
                                        FleetReplay(jobs / 5, seed, /*mixed=*/true)};
    double total_wall = 0.0;
    for (const FleetRow& row : rows) {
      PrintFleetRow(row);
      total_wall += row.wall_s;
      if (row.heap_fallbacks > 0) {
        std::fprintf(stderr, "error: %lld event callbacks overflowed the inline buffer\n",
                     static_cast<long long>(row.heap_fallbacks));
        return 1;
      }
    }
    if (flags.Has("budget-s")) {
      const double budget = static_cast<double>(flags.GetInt64("budget-s", 60));
      if (total_wall > budget) {
        std::fprintf(stderr, "error: %d-job traces took %.2fs (budget %.0fs)\n", jobs, total_wall,
                     budget);
        return 1;
      }
      std::printf("within budget: %.2fs <= %.0fs\n", total_wall, budget);
    }
    return 0;
  }

  bench::Heading("tuning service throughput: cold vs warm pool");
  std::printf("%5s %6s %10s %9s %9s %10s %11s %10s %8s\n", "jobs", "mode", "completed",
              "launches", "hit rate", "makespan", "queue wait", "total $", "$/job");

  std::vector<Row> rows;
  for (int jobs : {1, 4, 16}) {
    for (const bool warm : {false, true}) {
      WarmPoolConfig pool;
      if (warm) {
        pool.max_parked = 16;
        pool.max_idle_seconds = 300.0;
      }
      const ServiceReport report = Replay(jobs, pool, seed);
      const Row row = MakeRow(jobs, warm ? "warm" : "cold", report);
      rows.push_back(row);
      std::printf("%5d %6s %10d %9d %8.0f%% %10s %11s %10.2f %8.2f\n", row.jobs,
                  row.mode.c_str(), row.completed, row.launches, 100.0 * row.hit_rate,
                  FormatDuration(row.makespan).c_str(),
                  FormatDuration(row.mean_queue_wait).c_str(), row.total_cost,
                  row.cost_per_job);
    }
  }

  FleetHeading();
  std::vector<FleetRow> fleet;
  for (const int jobs : {1000, 10000, 100000}) {
    const FleetRow row = FleetReplay(jobs, seed);
    fleet.push_back(row);
    PrintFleetRow(row);
  }
  // Mixed-scheduler trace: 2000 experiments compile into ~2800 jobs across
  // all five scheduler kinds.
  const FleetRow mixed = FleetReplay(2000, seed, /*mixed=*/true);
  fleet.push_back(mixed);
  PrintFleetRow(mixed);

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, rows, fleet)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
