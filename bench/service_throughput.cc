// Service throughput: the multi-tenant control plane replaying the same
// job-arrival trace cold (every release terminates) and warm (releases
// park in the WarmPool) at 1, 4, and 16 jobs.
//
// The cold column is what N independent RubberBand runs would pay; the
// warm column is the service's pitch — successor jobs inherit their
// predecessors' still-billed instances, so real provisioning events (and
// the init time billed with them) drop as the trace gets busier.
//
//   --json <path>   additionally write the table as JSON (BENCH_service.json)
//   --seed <n>      service RNG seed (default 7, the checked-in baseline)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"

namespace rubberband {
namespace {

struct Row {
  int jobs = 0;
  std::string mode;
  int completed = 0;
  int launches = 0;
  double hit_rate = 0.0;
  Seconds makespan = 0.0;
  Seconds mean_queue_wait = 0.0;
  double total_cost = 0.0;
  double cost_per_job = 0.0;
};

ServiceReport Replay(int num_jobs, const WarmPoolConfig& pool, uint64_t seed) {
  ServiceConfig config;
  config.cloud = bench::P38Cloud(/*queuing_seconds=*/30.0, /*init_seconds=*/120.0);
  // One 4-GPU job slot: arrivals burst in and the queue serializes them,
  // so every job-to-job hand-off is a warm-reuse opportunity.
  config.capacity_gpus = 4;
  config.warm_pool = pool;
  config.seed = seed;

  TuningService service(config);
  for (int i = 0; i < num_jobs; ++i) {
    JobRequest job;
    job.name = "job-" + std::to_string(i);
    job.spec = MakeSha(/*num_trials=*/8, /*min_iters=*/2, /*max_iters=*/14,
                       /*reduction_factor=*/2);
    job.workload = ResNet101Cifar10();
    job.submit_at = 60.0 * i;
    job.deadline = 1800.0 * num_jobs;  // covers the serialized backlog
    service.Submit(job);
  }
  return service.Run();
}

Row MakeRow(int jobs, const std::string& mode, const ServiceReport& report) {
  Row row;
  row.jobs = jobs;
  row.mode = mode;
  row.completed = report.completed;
  row.launches = report.instance_launches;
  row.hit_rate = report.warm.HitRate();
  row.makespan = report.makespan;
  row.mean_queue_wait = report.mean_queue_wait;
  row.total_cost = report.total_cost.Total().dollars();
  row.cost_per_job = report.cost_per_completed_job.dollars();
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"benchmark\": \"service_throughput\",\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"jobs\": %d, \"mode\": \"%s\", \"completed\": %d, "
                 "\"instance_launches\": %d, \"warm_hit_rate\": %.4f, "
                 "\"makespan_s\": %.1f, \"mean_queue_wait_s\": %.1f, "
                 "\"total_cost_usd\": %.2f, \"cost_per_job_usd\": %.2f}%s\n",
                 row.jobs, row.mode.c_str(), row.completed, row.launches, row.hit_rate,
                 row.makespan, row.mean_queue_wait, row.total_cost, row.cost_per_job,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed", 7));

  bench::Heading("tuning service throughput: cold vs warm pool");
  std::printf("%5s %6s %10s %9s %9s %10s %11s %10s %8s\n", "jobs", "mode", "completed",
              "launches", "hit rate", "makespan", "queue wait", "total $", "$/job");

  std::vector<Row> rows;
  for (int jobs : {1, 4, 16}) {
    for (const bool warm : {false, true}) {
      WarmPoolConfig pool;
      if (warm) {
        pool.max_parked = 16;
        pool.max_idle_seconds = 300.0;
      }
      const ServiceReport report = Replay(jobs, pool, seed);
      const Row row = MakeRow(jobs, warm ? "warm" : "cold", report);
      rows.push_back(row);
      std::printf("%5d %6s %10d %9d %8.0f%% %10s %11s %10.2f %8.2f\n", row.jobs,
                  row.mode.c_str(), row.completed, row.launches, 100.0 * row.hit_rate,
                  FormatDuration(row.makespan).c_str(),
                  FormatDuration(row.mean_queue_wait).c_str(), row.total_cost,
                  row.cost_per_job);
    }
  }

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, rows)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
