// Figure 1: elastic hyperparameter search — a static allocation vs an
// elastic allocation of the same tuning job, as GPUs-over-time charts.
//
// The paper's motivating picture: in the static panel the surviving trial
// is eventually handed the entire cluster "despite needing fewer resources
// to complete training within constraints"; the elastic panel front-loads
// capacity and sheds it as trials are terminated.

#include "bench/bench_util.h"
#include "src/planner/render.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const CloudProfile cloud = P38Cloud(5.0, 10.0);
  const Seconds deadline = Minutes(20);

  const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline});
  const PlannedJob elastic = PlanGreedy({spec, profile, cloud, deadline});

  Heading("Figure 1: static vs elastic allocation (GPUs over time, 20-min deadline)");
  std::printf("%s", RenderComparison(spec, fixed.plan, elastic.plan, profile, cloud).c_str());
  std::printf("\nstatic cost %s vs elastic cost %s (%.2fx)\n",
              fixed.estimate.cost_mean.ToString().c_str(),
              elastic.estimate.cost_mean.ToString().c_str(),
              fixed.estimate.cost_mean.dollars() / elastic.estimate.cost_mean.dollars());
  return 0;
}
