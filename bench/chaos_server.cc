// Chaos harness for the serving front door: a seeded kill/restart schedule
// against a live arrival trace, with the acceptance bar that the final
// report is BYTE-IDENTICAL to the same trace run without any kills.
//
// The driver submits jobs at absolute simulation times (ping for now_s,
// advance the difference), so restart timing cannot move ops in sim time.
// Each op carries an idempotency key and is sent via CallIdempotent: when
// a kill lands between an op's WAL append and its ack, the retry against
// the recovered server returns the journaled original decision instead of
// double-submitting. Kills are abrupt (Server::Kill — no drain, no final
// fsync), recovery is pure WAL replay, and half the kills (seeded) also
// splice a torn partial record onto the journal tail to model dying
// mid-append under fsync=always.
//
//   --seeds=3            run kill schedules for seeds base..base+seeds-1
//   --seed=11            base seed (service seed and kill schedule)
//   --jobs=12            arrival trace length
//   --kill-rate=0.3      per-op kill probability
//   --json <path>        write BENCH_chaos.json
//
// Exits non-zero if any seed's chaos report differs from its control
// report — tools/check.sh --chaos runs this as a gate, not a benchmark.

#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/server/client.h"
#include "src/server/server.h"

#include <fstream>

namespace rubberband {
namespace {

constexpr double kArrivalGapS = 45.0;  // sim seconds between submits

JsonValue TinySubmitParams(const std::string& name) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString(name));
  params.Set("trials", JsonValue::MakeNumber(4));
  params.Set("min_iters", JsonValue::MakeNumber(1));
  params.Set("max_iters", JsonValue::MakeNumber(4));
  params.Set("eta", JsonValue::MakeNumber(2));
  params.Set("deadline_s", JsonValue::MakeNumber(36'000.0));
  return params;
}

ServerOptions BaseOptions(uint64_t seed, const std::string& wal_path) {
  ServerOptions options;
  options.port = 0;
  options.runner.service.capacity_gpus = 16;
  options.runner.service.seed = seed;
  options.runner.auto_advance_step = 0.0;  // the driver owns the clock
  options.runner.wal_path = wal_path;
  options.runner.wal.fsync = FsyncPolicy::kAlways;
  return options;
}

struct ChaosCounters {
  int kills = 0;
  int torn_tails_injected = 0;
  int64_t wal_recoveries = 0;
  int64_t ops_replayed = 0;
  int64_t torn_tails_truncated = 0;
  int64_t idem_duplicates = 0;
  int64_t client_retries = 0;
  int64_t client_reconnects = 0;
  int64_t client_timeouts = 0;
};

struct ChaosRun {
  bool ok = false;
  std::string final_report;
  ChaosCounters counters;
};

bool Call(Client& client, const std::string& method, const JsonValue& params,
          const std::string& idem, JsonValue* result) {
  JsonValue response;
  std::string error;
  if (!client.CallIdempotent(method, params, "default", idem, &response, &error)) {
    std::fprintf(stderr, "error: %s %s: %s\n", method.c_str(), idem.c_str(), error.c_str());
    return false;
  }
  if (!response.at("ok").bool_value()) {
    std::fprintf(stderr, "error: %s rejected: %s\n", method.c_str(), response.ToJson().c_str());
    return false;
  }
  *result = response.at("result");
  return true;
}

// Drives simulation time to the ABSOLUTE target, whatever the restarted
// server's clock says (recovery replays only journaled ops, so a restart
// can be "behind" the pre-kill clock until the driver re-advances it).
bool AdvanceTo(Client& client, double target) {
  JsonValue now_result;
  if (!Call(client, "ping", JsonValue::MakeObject(), "", &now_result)) {
    return false;
  }
  const double now = now_result.at("now_s").number();
  if (now >= target) {
    return true;
  }
  JsonValue params = JsonValue::MakeObject();
  params.Set("seconds", JsonValue::MakeNumber(target - now));
  JsonValue advanced;
  return Call(client, "advance", params, "", &advanced);
}

void HarvestServer(Server& server, ChaosCounters* counters) {
  const ServiceRunner* runner = server.runner();
  counters->idem_duplicates += runner->idem_duplicates();
  if (runner->wal_stats().recovered) {
    ++counters->wal_recoveries;
    counters->ops_replayed += runner->wal_stats().ops_replayed;
    if (runner->wal_stats().torn_tail_truncated) {
      ++counters->torn_tails_truncated;
    }
  }
}

ChaosRun RunTrace(uint64_t seed, int jobs, double kill_rate, bool chaos) {
  ChaosRun run;
  const std::string wal_path =
      "/tmp/rb_chaos_" + std::to_string(seed) + (chaos ? "_chaos" : "_control") + ".wal";
  std::remove(wal_path.c_str());

  ServerOptions options = BaseOptions(seed, wal_path);
  auto server = std::make_unique<Server>(options);
  std::string error;
  if (!server->Start(&error)) {
    std::fprintf(stderr, "error: start: %s\n", error.c_str());
    return run;
  }
  options.port = server->port();  // restarts rebind the same front door

  ClientOptions client_options;
  client_options.max_attempts = 30;
  client_options.base_backoff_ms = 5.0;
  client_options.max_backoff_ms = 100.0;
  client_options.connect_timeout_ms = 2'000;
  client_options.io_timeout_ms = 10'000;
  client_options.seed = seed;
  Client client(client_options);
  if (!client.Connect("127.0.0.1", server->port(), &error)) {
    std::fprintf(stderr, "error: connect: %s\n", error.c_str());
    return run;
  }

  Rng schedule = Rng::ForStream(seed, /*stream=*/0xC4A05, /*index=*/0);
  for (int i = 0; i < jobs; ++i) {
    const double at = static_cast<double>(i) * kArrivalGapS;
    if (!AdvanceTo(client, at)) {
      return run;
    }
    const std::string name = "chaos-job-" + std::to_string(i);
    JsonValue decision;
    if (!Call(client, "submit", TinySubmitParams(name), /*idem=*/name, &decision)) {
      return run;
    }

    if (chaos && schedule.Uniform(0.0, 1.0) < kill_rate) {
      // kill -9 between ops. Half the kills also die mid-append: splice a
      // torn record (3 bytes of a length prefix) onto the journal tail —
      // an in-process kill cannot tear a completed write() on its own.
      HarvestServer(*server, &run.counters);
      server->Kill();
      server.reset();
      ++run.counters.kills;
      if (schedule.Uniform(0.0, 1.0) < 0.5) {
        std::ofstream torn(wal_path, std::ios::binary | std::ios::app);
        torn << std::string("\x00\x00\x01", 3);
        ++run.counters.torn_tails_injected;
      }
      server = std::make_unique<Server>(options);
      if (!server->Start(&error)) {
        std::fprintf(stderr, "error: restart: %s\n", error.c_str());
        return run;
      }
      // Model a lost ack: re-send the submit the kill chased, same key.
      // The recovered server must answer with the journaled original
      // decision, not a second job.
      JsonValue replayed;
      if (!Call(client, "submit", TinySubmitParams(name), /*idem=*/name, &replayed)) {
        return run;
      }
      if (replayed.ToJson() != decision.ToJson()) {
        std::fprintf(stderr, "error: idempotent retry diverged from original decision\n");
        return run;
      }
    }
  }

  // Run everything to completion, then take the final report.
  for (int i = 0; i < 10'000; ++i) {
    JsonValue params = JsonValue::MakeObject();
    params.Set("seconds", JsonValue::MakeNumber(600.0));
    JsonValue advanced;
    if (!Call(client, "advance", params, "", &advanced)) {
      return run;
    }
    if (advanced.at("idle").bool_value()) {
      break;
    }
  }
  JsonValue report;
  if (!Call(client, "report", JsonValue::MakeObject(), "", &report)) {
    return run;
  }
  run.final_report = report.at("text").string();

  server->Stop();
  HarvestServer(*server, &run.counters);
  run.counters.client_retries = client.stats().retries;
  run.counters.client_reconnects = client.stats().reconnects;
  run.counters.client_timeouts = client.stats().timeouts;
  std::remove(wal_path.c_str());
  run.ok = true;
  return run;
}

struct SeedVerdict {
  uint64_t seed = 0;
  bool identical = false;
  ChaosCounters counters;
};

bool WriteJson(const std::string& path, int jobs, double kill_rate,
               const std::vector<SeedVerdict>& verdicts) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"benchmark\": \"chaos_server\",\n");
  std::fprintf(file, "  \"jobs\": %d,\n  \"kill_rate\": %.2f,\n  \"seeds\": [\n", jobs,
               kill_rate);
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const SeedVerdict& v = verdicts[i];
    std::fprintf(file,
                 "    {\"seed\": %llu, \"report_identical\": %s, \"kills\": %d, "
                 "\"torn_tails_injected\": %d, \"wal_recoveries\": %lld, "
                 "\"ops_replayed\": %lld, \"torn_tails_truncated\": %lld, "
                 "\"idem_duplicates\": %lld, \"client_retries\": %lld, "
                 "\"client_reconnects\": %lld, \"client_timeouts\": %lld}%s\n",
                 static_cast<unsigned long long>(v.seed), v.identical ? "true" : "false",
                 v.counters.kills, v.counters.torn_tails_injected,
                 static_cast<long long>(v.counters.wal_recoveries),
                 static_cast<long long>(v.counters.ops_replayed),
                 static_cast<long long>(v.counters.torn_tails_truncated),
                 static_cast<long long>(v.counters.idem_duplicates),
                 static_cast<long long>(v.counters.client_retries),
                 static_cast<long long>(v.counters.client_reconnects),
                 static_cast<long long>(v.counters.client_timeouts),
                 i + 1 < verdicts.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  const uint64_t base_seed = static_cast<uint64_t>(flags.GetInt64("seed", 11));
  const int seeds = flags.GetInt("seeds", 3);
  const int jobs = flags.GetInt("jobs", 12);
  const double kill_rate = flags.GetDouble("kill-rate", 0.3);

  bench::Heading("chaos: seeded kill/restart vs uninterrupted control");
  std::vector<SeedVerdict> verdicts;
  bool all_identical = true;
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(s);
    const ChaosRun control = RunTrace(seed, jobs, kill_rate, /*chaos=*/false);
    const ChaosRun chaotic = RunTrace(seed, jobs, kill_rate, /*chaos=*/true);
    SeedVerdict verdict;
    verdict.seed = seed;
    verdict.counters = chaotic.counters;
    verdict.identical =
        control.ok && chaotic.ok && control.final_report == chaotic.final_report;
    all_identical = all_identical && verdict.identical;
    verdicts.push_back(verdict);
    std::printf(
        "seed %llu: %s (%d kills, %d torn tails, %lld ops replayed, "
        "%lld idem duplicates, %lld client retries)\n",
        static_cast<unsigned long long>(seed),
        verdict.identical ? "report byte-identical" : "REPORT DIVERGED",
        chaotic.counters.kills, chaotic.counters.torn_tails_injected,
        static_cast<long long>(chaotic.counters.ops_replayed),
        static_cast<long long>(chaotic.counters.idem_duplicates),
        static_cast<long long>(chaotic.counters.client_retries));
  }

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, jobs, kill_rate, verdicts)) {
      return 1;
    }
  }
  if (!all_identical) {
    std::fprintf(stderr, "error: chaos run diverged from control\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
