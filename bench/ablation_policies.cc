// Ablation: runtime resource policies on the same workload (DESIGN.md's
// design-choice ablations; paper sections 2.1 and 3.2).
//
// Three ways to run the Table 2 job's 20-minute configuration:
//   static              fixed cluster, freed GPUs idle until the barrier
//   static+reallocate   fixed cluster, freed GPUs immediately handed to the
//                       running trials (HyperSched-style)
//   rubberband          elastic plan, freed capacity deprovisioned
// Expected shape: reallocation buys a little JCT over plain static at the
// same cost (sub-linear scaling caps the gain, and each resize pays gang
// startup again); the elastic plan matches JCT at a much lower cost and a
// much higher realized utilization.

#include "bench/bench_util.h"
#include "src/common/stats.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = P38Cloud(5.0, 10.0);
  const ModelProfile profile = ProfileWorkload(workload).profile;
  const Seconds deadline = Minutes(20);

  const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline});
  const PlannedJob elastic = PlanGreedy({spec, profile, cloud, deadline});

  struct Row {
    const char* name;
    AllocationPlan plan;
    bool reallocate;
  };
  const Row rows[] = {
      {"static (idle freed GPUs)", fixed.plan, false},
      {"static + reallocate-all", fixed.plan, true},
      {"rubberband (elastic)", elastic.plan, false},
  };

  Heading("Ablation: runtime policy for freed resources (20-min ResNet-101 job)");
  std::printf("%-28s %10s %10s %14s\n", "policy", "JCT", "cost", "utilization");
  for (const Row& row : rows) {
    RunningStats jct;
    RunningStats cost;
    RunningStats utilization;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ExecutorOptions options;
      options.seed = seed;
      options.reallocate_freed_resources = row.reallocate;
      const ExecutionReport report = Execute(spec, row.plan, workload, cloud, options);
      jct.Add(report.jct);
      cost.Add(report.cost.Total().dollars());
      utilization.Add(report.realized_utilization);
    }
    std::printf("%-28s %10s $%8.2f %13.0f%%\n", row.name, FormatDuration(jct.mean()).c_str(),
                cost.mean(), 100.0 * utilization.mean());
  }
  return 0;
}
