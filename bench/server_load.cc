// Closed-loop load generator for the serving front door.
//
// Phase 1 (throughput): starts an in-process server, then W worker threads
// each drive one connection in a closed loop — mostly cheap status/ping
// polls with a submit mixed in every kSubmitEvery requests (the realistic
// shape: tenants poll far more often than they submit). Reports sustained
// req/s and client-side latency, plus the server's own submit→decision
// p50/p99 from its metrics registry.
//
// Phase 2 (backpressure): a fresh server with a per-tenant token bucket. A
// hog tenant submits as fast as the socket allows while a compliant tenant
// paces below the limit; over-limit traffic must bounce with RATE_LIMITED
// (honest retry-after) and the compliant tenant's admission latency must
// stay flat.
//
//   --workers=8 --requests=2000      phase-1 shape (per-worker request count)
//   --rate=200 --burst=20            phase-2 per-tenant bucket
//   --seed=11                        service RNG seed for both phases
//   --json <path>                    write BENCH_server.json
//   --skip-backpressure              phase 1 only

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/obs/metrics.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace rubberband {
namespace {

constexpr int kSubmitEvery = 100;  // 1 submit per 100 requests in phase 1

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A tiny tuning job: admission still runs the real planner, but over a
// trivial search so the service thread stays submit-bound, not plan-bound.
JsonValue TinySubmitParams(const std::string& name) {
  JsonValue params = JsonValue::MakeObject();
  params.Set("name", JsonValue::MakeString(name));
  params.Set("trials", JsonValue::MakeNumber(2));
  params.Set("min_iters", JsonValue::MakeNumber(1));
  params.Set("max_iters", JsonValue::MakeNumber(2));
  params.Set("eta", JsonValue::MakeNumber(2));
  params.Set("deadline_s", JsonValue::MakeNumber(36'000.0));
  return params;
}

ServerOptions BaseOptions(uint64_t seed) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.runner.service.capacity_gpus = 64;
  options.runner.service.seed = seed;
  options.runner.auto_advance_step = 1.0;
  return options;
}

struct WorkerStats {
  int64_t ok = 0;
  int64_t errors = 0;
};

struct ThroughputResult {
  double wall_s = 0.0;
  int64_t requests = 0;
  int64_t errors = 0;
  double req_per_s = 0.0;
  double client_p50_ms = 0.0;
  double client_p99_ms = 0.0;
  double decision_p50_ms = 0.0;
  double decision_p99_ms = 0.0;
};

ThroughputResult RunThroughput(int workers, int requests_per_worker, uint64_t seed) {
  Server server(BaseOptions(seed));
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return {};
  }

  Histogram client_latency(FineLatencyBucketsNs());
  std::vector<WorkerStats> stats(static_cast<size_t>(workers));
  const int64_t begin_ns = NowNs();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Client client;
      std::string conn_error;
      if (!client.Connect("127.0.0.1", server.port(), &conn_error)) {
        stats[static_cast<size_t>(w)].errors = requests_per_worker;
        return;
      }
      const std::string tenant = "tenant-" + std::to_string(w);
      int submitted = 0;
      for (int i = 0; i < requests_per_worker; ++i) {
        JsonValue params = JsonValue::MakeObject();
        std::string method = "ping";
        if (i % kSubmitEvery == 0) {
          method = "submit";
          params = TinySubmitParams(tenant + "-job-" + std::to_string(submitted++));
        } else if (i % 2 == 0) {
          method = "status";
          params.Set("job", JsonValue::MakeString(tenant + "-job-0"));
        }
        JsonValue response;
        std::string call_error;
        const int64_t t0 = NowNs();
        if (!client.Call(method, params, tenant, &response, &call_error)) {
          ++stats[static_cast<size_t>(w)].errors;
          break;  // transport dead; stop this worker
        }
        client_latency.RecordNanos(NowNs() - t0);
        if (response.Has("ok") && response.at("ok").bool_value()) {
          ++stats[static_cast<size_t>(w)].ok;
        } else {
          ++stats[static_cast<size_t>(w)].errors;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const int64_t elapsed_ns = NowNs() - begin_ns;

  const MetricsSnapshot server_metrics = server.ServerMetrics();
  server.Stop();

  ThroughputResult result;
  result.wall_s = static_cast<double>(elapsed_ns) / 1e9;
  for (const WorkerStats& s : stats) {
    result.requests += s.ok + s.errors;
    result.errors += s.errors;
  }
  result.req_per_s = static_cast<double>(result.requests) / result.wall_s;
  const HistogramSnapshot client_snapshot = client_latency.Snapshot();
  result.client_p50_ms = client_snapshot.QuantileNs(0.50) / 1e6;
  result.client_p99_ms = client_snapshot.QuantileNs(0.99) / 1e6;
  const auto decision = server_metrics.histograms.find("server.submit.decision_ns");
  if (decision != server_metrics.histograms.end()) {
    result.decision_p50_ms = decision->second.QuantileNs(0.50) / 1e6;
    result.decision_p99_ms = decision->second.QuantileNs(0.99) / 1e6;
  }
  return result;
}

struct BackpressureResult {
  int64_t hog_admitted = 0;
  int64_t hog_rejected = 0;
  int64_t hog_other_errors = 0;
  bool retry_after_seen = false;
  int64_t compliant_admitted = 0;
  int64_t compliant_rejected = 0;
  double compliant_p99_ms = 0.0;
};

BackpressureResult RunBackpressure(double rate, double burst, int hog_requests, uint64_t seed) {
  ServerOptions options = BaseOptions(seed);
  options.rate.rate_per_second = rate;
  options.rate.burst = burst;
  Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return {};
  }

  BackpressureResult result;
  Histogram compliant_latency(FineLatencyBucketsNs());

  std::thread hog([&] {
    Client client;
    std::string conn_error;
    if (!client.Connect("127.0.0.1", server.port(), &conn_error)) {
      return;
    }
    for (int i = 0; i < hog_requests; ++i) {
      JsonValue response;
      std::string call_error;
      if (!client.Call("submit", TinySubmitParams("hog-" + std::to_string(i)), "hog",
                       &response, &call_error)) {
        break;
      }
      if (response.at("ok").bool_value()) {
        ++result.hog_admitted;
      } else if (response.at("error").at("code").string() == kErrRateLimited) {
        ++result.hog_rejected;
        if (response.at("error").Has("retry_after_ms")) {
          result.retry_after_seen = true;
        }
      } else {
        ++result.hog_other_errors;
      }
    }
  });

  std::thread compliant([&] {
    Client client;
    std::string conn_error;
    if (!client.Connect("127.0.0.1", server.port(), &conn_error)) {
      return;
    }
    // Pace at half the allowed rate: this tenant is never the problem.
    const auto gap = std::chrono::nanoseconds(static_cast<int64_t>(2e9 / rate));
    const int count = hog_requests / 20;
    for (int i = 0; i < count; ++i) {
      JsonValue response;
      std::string call_error;
      const int64_t t0 = NowNs();
      if (!client.Call("submit", TinySubmitParams("ok-" + std::to_string(i)), "compliant",
                       &response, &call_error)) {
        break;
      }
      compliant_latency.RecordNanos(NowNs() - t0);
      if (response.at("ok").bool_value()) {
        ++result.compliant_admitted;
      } else {
        ++result.compliant_rejected;
      }
      std::this_thread::sleep_for(gap);
    }
  });

  hog.join();
  compliant.join();
  server.Stop();
  result.compliant_p99_ms = compliant_latency.Snapshot().QuantileNs(0.99) / 1e6;
  return result;
}

bool WriteJson(const std::string& path, int workers, const ThroughputResult& load,
               double rate, const BackpressureResult& bp) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"benchmark\": \"server_load\",\n");
  std::fprintf(file,
               "  \"throughput\": {\"workers\": %d, \"requests\": %lld, \"errors\": %lld, "
               "\"wall_s\": %.3f, \"req_per_s\": %.0f, \"client_p50_ms\": %.3f, "
               "\"client_p99_ms\": %.3f, \"submit_decision_p50_ms\": %.3f, "
               "\"submit_decision_p99_ms\": %.3f},\n",
               workers, static_cast<long long>(load.requests),
               static_cast<long long>(load.errors), load.wall_s, load.req_per_s,
               load.client_p50_ms, load.client_p99_ms, load.decision_p50_ms,
               load.decision_p99_ms);
  std::fprintf(file,
               "  \"backpressure\": {\"rate_per_s\": %.0f, \"hog_admitted\": %lld, "
               "\"hog_rate_limited\": %lld, \"retry_after_present\": %s, "
               "\"compliant_admitted\": %lld, \"compliant_rejected\": %lld, "
               "\"compliant_p99_ms\": %.3f}\n}\n",
               rate, static_cast<long long>(bp.hog_admitted),
               static_cast<long long>(bp.hog_rejected), bp.retry_after_seen ? "true" : "false",
               static_cast<long long>(bp.compliant_admitted),
               static_cast<long long>(bp.compliant_rejected), bp.compliant_p99_ms);
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  const int workers = flags.GetInt("workers", 8);
  const int requests = flags.GetInt("requests", 2000);
  const double rate = flags.GetDouble("rate", 200.0);
  const double burst = flags.GetDouble("burst", 20.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed", 11));

  bench::Heading("serving front door: closed-loop load");
  const ThroughputResult load = RunThroughput(workers, requests, seed);
  std::printf("%d workers x %d requests: %.0f req/s over %.2fs (%lld requests, %lld errors)\n",
              workers, requests, load.req_per_s, load.wall_s,
              static_cast<long long>(load.requests), static_cast<long long>(load.errors));
  std::printf("client latency p50 %.3fms p99 %.3fms; submit->decision p50 %.3fms p99 %.3fms\n",
              load.client_p50_ms, load.client_p99_ms, load.decision_p50_ms,
              load.decision_p99_ms);

  BackpressureResult bp;
  if (!flags.GetBool("skip-backpressure")) {
    bench::Heading("per-tenant backpressure: hog vs compliant");
    bp = RunBackpressure(rate, burst, /*hog_requests=*/2000, seed);
    std::printf("hog:       %lld admitted, %lld rate-limited (retry-after %s), %lld other\n",
                static_cast<long long>(bp.hog_admitted),
                static_cast<long long>(bp.hog_rejected),
                bp.retry_after_seen ? "present" : "MISSING",
                static_cast<long long>(bp.hog_other_errors));
    std::printf("compliant: %lld admitted, %lld rejected, p99 %.3fms\n",
                static_cast<long long>(bp.compliant_admitted),
                static_cast<long long>(bp.compliant_rejected), bp.compliant_p99_ms);
  }

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, workers, load, rate, bp)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
