// Table 1: placement-controller ablation — sample throughput of trials at
// different worker sizes, with and without locality-aware placement.
//
// ResNet-50, batch 1024, on a cluster of p3.16xlarge instances (8 V100s,
// the paper's quoted $7.50/hr). "No placement" delegates worker placement
// to a locality-unaware scheduler (round-robin scatter). Expected shape:
// with placement, throughput scales nearly linearly in the worker size;
// scattered placement collapses to roughly 2x slower at 4 GPUs.

#include "bench/bench_util.h"

#include "src/common/stats.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  CloudProfile cloud;
  cloud.instance = P3_16xlarge().WithPrice(Money::FromCents(750));
  cloud.provisioning = ProvisioningModel::Fixed(2.0, 5.0);

  const WorkloadSpec workload = ResNet50(Cifar10(), 1024);

  Heading("Table 1: trial sample throughput (samples/s), placement vs no placement");
  std::printf("%-8s %24s %24s\n", "# GPUs", "Placement", "No Placement");

  for (int gpus : {1, 2, 4}) {
    // One stage of 12 gangs of `gpus` workers each, across several seeds.
    const int trials = 12;
    ExperimentSpec spec;
    spec.AddStage(trials, 8);
    const AllocationPlan plan({trials * gpus});

    RunningStats packed;
    RunningStats scattered;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      ExecutorOptions with_placement;
      with_placement.seed = seed;
      with_placement.record_throughput = true;
      ExecutorOptions without_placement = with_placement;
      without_placement.placement = PlacementStrategy::kScatter;

      for (double t : ExecutePlan(spec, plan, workload, cloud, with_placement).trial_throughputs) {
        packed.Add(t);
      }
      for (double t :
           ExecutePlan(spec, plan, workload, cloud, without_placement).trial_throughputs) {
        scattered.Add(t);
      }
    }
    std::printf("%-8d %24s %24s\n", gpus,
                PlusMinus(packed.mean(), packed.stddev()).c_str(),
                PlusMinus(scattered.mean(), scattered.stddev()).c_str());
  }
  std::printf("\n(scattered gangs span extra nodes and pay the cross-node all-reduce penalty)\n");
  return 0;
}
