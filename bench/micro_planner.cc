// Microbenchmarks and ablations for the allocation planners: end-to-end
// planning latency for each policy, the fresh-DAG vs stage-incremental
// evaluation paths (cold, warm, and parallel), and the cost of Algorithm
// 2's multi-warm-start design choice (DESIGN.md ablation: single vs multi
// warm start, and simulator sample count vs plan quality).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/planner/evaluator.h"

namespace rubberband {
namespace {

using bench::P38Cloud;
using bench::ResNet50Profile;

PlannerInputs Inputs(int trials, double deadline_minutes) {
  return PlannerInputs{MakeSha(trials, 4, 508, 2), ResNet50Profile(4.0, 0.4), P38Cloud(),
                       Minutes(deadline_minutes)};
}

void BM_PlanStatic(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(static_cast<int>(state.range(0)), 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanStatic(inputs));
  }
}
BENCHMARK(BM_PlanStatic)->Arg(16)->Arg(64)->Arg(256);

void BM_PlanNaiveElastic(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(static_cast<int>(state.range(0)), 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanNaiveElastic(inputs));
  }
}
BENCHMARK(BM_PlanNaiveElastic)->Arg(16)->Arg(64)->Arg(256);

// Plan estimates served per second: actual evaluations plus memo hits —
// the work Algorithm 2 asked for, whether or not the cache absorbed it.
void ReportEvalRate(benchmark::State& state, int64_t evals) {
  state.counters["evals_per_s"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kIsRate);
}

// The performance baseline: every candidate rebuilds the DAG and resweeps
// every node (the pre-evaluator planning path).
void BM_PlanGreedyBaseline(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(static_cast<int>(state.range(0)), 30.0);
  PlannerOptions options;
  options.evaluation = PlanEvaluation::kFresh;
  int64_t evals = 0;
  for (auto _ : state) {
    PlanEvaluator evaluator(inputs, options);
    benchmark::DoNotOptimize(PlanGreedy(evaluator));
    const PlannerCacheStats stats = evaluator.stats();
    evals += stats.plan_evaluations + stats.plan_memo_hits;
  }
  ReportEvalRate(state, evals);
}
BENCHMARK(BM_PlanGreedyBaseline)->Arg(16)->Arg(64)->Arg(256);

// Stage-incremental evaluation from a cold cache (one fresh evaluator per
// plan, as a single-shot CLI invocation would pay).
void BM_PlanGreedy(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(static_cast<int>(state.range(0)), 30.0);
  int64_t evals = 0;
  for (auto _ : state) {
    PlanEvaluator evaluator(inputs, PlannerOptions{});
    benchmark::DoNotOptimize(PlanGreedy(evaluator));
    const PlannerCacheStats stats = evaluator.stats();
    evals += stats.plan_evaluations + stats.plan_memo_hits;
  }
  ReportEvalRate(state, evals);
}
BENCHMARK(BM_PlanGreedy)->Arg(16)->Arg(64)->Arg(256);

// Re-planning against a persistent evaluator (the tuning service's steady
// state: admission, dequeue and fault replans share one cache per job).
void BM_PlanGreedyWarm(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(static_cast<int>(state.range(0)), 30.0);
  PlanEvaluator evaluator(inputs, PlannerOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanGreedy(evaluator));
  }
  const PlannerCacheStats stats = evaluator.stats();
  ReportEvalRate(state, stats.plan_evaluations + stats.plan_memo_hits);
  state.counters["plan_hit_rate"] = stats.PlanHitRate();
}
BENCHMARK(BM_PlanGreedyWarm)->Arg(16)->Arg(64)->Arg(256);

// Cold incremental evaluation with a 4-thread candidate batch pool.
void BM_PlanGreedyParallel(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(static_cast<int>(state.range(0)), 30.0);
  PlannerOptions options;
  options.eval_threads = 4;
  int64_t evals = 0;
  for (auto _ : state) {
    PlanEvaluator evaluator(inputs, options);
    benchmark::DoNotOptimize(PlanGreedy(evaluator));
    const PlannerCacheStats stats = evaluator.stats();
    evals += stats.plan_evaluations + stats.plan_memo_hits;
  }
  ReportEvalRate(state, evals);
}
BENCHMARK(BM_PlanGreedyParallel)->Arg(16)->Arg(64)->Arg(256);

// Ablation: warm-start multiplicity. Reports the found plan's predicted
// cost (lower is better) alongside the planning time.
void BM_GreedyWarmStarts(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(64, 20.0);
  PlannerOptions options;
  options.warm_start_multipliers.clear();
  for (int i = 1; i <= state.range(0); ++i) {
    options.warm_start_multipliers.push_back(static_cast<double>(i));
  }
  double cost = 0.0;
  for (auto _ : state) {
    const PlannedJob job = PlanGreedy(inputs, options);
    cost = job.estimate.cost_mean.dollars();
    benchmark::DoNotOptimize(job);
  }
  state.counters["plan_cost_$"] = cost;
}
BENCHMARK(BM_GreedyWarmStarts)->DenseRange(1, 3);

// Ablation: simulator samples per candidate evaluation vs plan quality.
void BM_GreedySimSamples(benchmark::State& state) {
  const PlannerInputs inputs = Inputs(64, 20.0);
  PlannerOptions options;
  options.sim_samples = static_cast<int>(state.range(0));
  double cost = 0.0;
  for (auto _ : state) {
    const PlannedJob job = PlanGreedy(inputs, options);
    cost = job.estimate.cost_mean.dollars();
    benchmark::DoNotOptimize(job);
  }
  state.counters["plan_cost_$"] = cost;
}
BENCHMARK(BM_GreedySimSamples)->Arg(1)->Arg(5)->Arg(20)->Arg(100);

}  // namespace
}  // namespace rubberband

// BENCHMARK_MAIN plus a "--json <path>" shorthand that expands to google-
// benchmark's --benchmark_out/--benchmark_out_format pair, so CI can
// collect machine-readable results the same way as bench/service_throughput.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  static std::string format_flag = "--benchmark_out_format=json";
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::string(args[i]) == "--json" && i + 1 < args.size()) {
      out_flag = std::string("--benchmark_out=") + args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      args.push_back(out_flag.data());
      args.push_back(format_flag.data());
      break;
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
