// Table 3: example cluster schedule for elastic training.
//
// The allocation plan RubberBand compiles for the Table 2 workload at the
// 20-minute constraint, rendered as the paper renders it: epoch range,
// surviving trials, GPUs per trial, and cluster size (instances) per stage.
// Expected shape: front-loaded — a wide cluster for the 32-trial first
// epoch, shrinking to ~2 instances for the lone survivor's long tail
// (paper: 8 / 5 / 4 / 2 instances; 1 / 2 / 4 / 8 GPUs per trial).

#include "bench/bench_util.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(32, 1, 50, 3);
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = P38Cloud(5.0, 10.0);
  const ModelProfile profile = ProfileWorkload(workload).profile;

  const PlannedJob fixed = PlanStatic({spec, profile, cloud, Minutes(20)});
  const PlannedJob job = CompilePlan(spec, profile, cloud, Minutes(20));
  const ExecutionReport report = Execute(spec, job.plan, workload, cloud);

  Heading("Table 3: cluster schedule for the 20-minute ResNet-101 plan");
  std::printf("optimal static cluster: %d GPUs (%d instances), cost %s\n",
              fixed.plan.gpus(0), (fixed.plan.gpus(0) + 3) / 4,
              fixed.estimate.cost_mean.ToString().c_str());
  std::printf("RubberBand plan:        %s, predicted cost %s\n\n",
              job.plan.ToString().c_str(), job.estimate.cost_mean.ToString().c_str());

  std::printf("%-14s %8s %12s %14s\n", "Epoch range", "trials", "GPUs/trial", "Cluster size");
  for (const StageLogEntry& stage : report.stage_log) {
    std::printf("%4lld-%-9lld %8d %12d %14d\n",
                static_cast<long long>(stage.start_cum_iters),
                static_cast<long long>(stage.end_cum_iters), stage.num_trials,
                stage.gpus_per_trial, stage.instances);
  }
  std::printf("\nrealized: JCT %s, cost %s, best accuracy %.1f%%\n",
              FormatDuration(report.jct).c_str(), report.cost.Total().ToString().c_str(),
              100.0 * report.best_accuracy);
  return 0;
}
