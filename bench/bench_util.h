// Shared helpers for the table/figure reproduction benches: canonical cloud
// and model profiles matching the paper's experimental setup, and plain
// fixed-width table printing so each binary's output reads like the paper's
// corresponding table or figure series.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>

#include "src/rubberband.h"

namespace rubberband::bench {

// ResNet-50 profile used by the simulated experiments (Figures 9-12): the
// paper parameterizes per-iteration latency directly (mean 4 s at batch 512,
// 12 s at batch 2048) and sweeps its variance for stragglers.
inline ModelProfile ResNet50Profile(double mean_iter_seconds, double iter_sigma,
                                    double dataset_gb = 0.0) {
  ModelProfile profile;
  profile.name = "resnet50";
  profile.iter_latency_1gpu =
      Distribution::TruncatedNormal(mean_iter_seconds, iter_sigma, 0.1 * mean_iter_seconds);
  profile.scaling = ResNet50(Cifar10(), 512).true_scaling;
  profile.dataset_gb = dataset_gb;
  profile.trial_startup_seconds = 2.0;
  profile.sync_seconds = 1.0;
  profile.cross_node_latency_factor = 2.3;
  return profile;
}

// p3.8xlarge on-demand cloud (the paper's default worker type).
inline CloudProfile P38Cloud(double queuing_seconds = 5.0, double init_seconds = 10.0) {
  CloudProfile cloud;
  cloud.instance = P3_8xlarge();
  cloud.provisioning = ProvisioningModel::Fixed(queuing_seconds, init_seconds);
  return cloud;
}

inline void Heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline std::string PlusMinus(double mean, double stddev, const char* fmt = "%.2f") {
  char m[64];
  char s[64];
  std::snprintf(m, sizeof(m), fmt, mean);
  std::snprintf(s, sizeof(s), fmt, stddev);
  return std::string(m) + " +/- " + s;
}

}  // namespace rubberband::bench

#endif  // BENCH_BENCH_UTIL_H_
