// Microbenchmarks for RubberBand's own hot paths: DAG construction and
// Algorithm 1 plan simulation. The planner calls these in its inner loop,
// so their throughput bounds how many candidate plans a search can afford.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dag/builder.h"

namespace rubberband {
namespace {

using bench::P38Cloud;
using bench::ResNet50Profile;

ExperimentSpec SpecForTrials(int trials) { return MakeSha(trials, 4, 508, 2); }

void BM_BuildDag(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(static_cast<int>(state.range(0)));
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), spec.stage(0).num_trials);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildDag(spec, plan, profile, cloud));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildDag)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

void BM_SimulatePlanSample(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(static_cast<int>(state.range(0)));
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), spec.stage(0).num_trials);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  int sample_index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamplePlan(dag, profile, cloud, 1, sample_index++));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulatePlanSample)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

void BM_SimulatePlanEstimate20Samples(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(64);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 64);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulatePlan(dag, profile, cloud, {20, 1}));
  }
}
BENCHMARK(BM_SimulatePlanEstimate20Samples);

void BM_EndToEndExecution(benchmark::State& state) {
  const ExperimentSpec spec = MakeSha(16, 2, 30, 2);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 16);
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = P38Cloud();
  uint64_t seed = 0;
  for (auto _ : state) {
    ExecutorOptions options;
    options.seed = seed++;
    benchmark::DoNotOptimize(ExecutePlan(spec, plan, workload, cloud, options));
  }
}
BENCHMARK(BM_EndToEndExecution);

}  // namespace
}  // namespace rubberband

BENCHMARK_MAIN();
