// Microbenchmarks for RubberBand's own hot paths: DAG construction,
// Algorithm 1 plan simulation, and the DES kernel itself (EventQueue
// schedule/run/cancel). The planner calls the simulators in its inner loop,
// and every runtime layer ticks on the kernel, so these throughputs bound
// everything above them.
//
//   --json <path>   skip google-benchmark and emit the kernel events/s
//                   baseline as JSON (BENCH_sim.json). Fails (exit 1) if
//                   any inline-sized callback fell back to the heap — the
//                   allocation-free hot-path regression check.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dag/builder.h"
#include "src/sim/event_queue.h"

namespace rubberband {
namespace {

using bench::P38Cloud;
using bench::ResNet50Profile;

ExperimentSpec SpecForTrials(int trials) { return MakeSha(trials, 4, 508, 2); }

void BM_BuildDag(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(static_cast<int>(state.range(0)));
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), spec.stage(0).num_trials);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildDag(spec, plan, profile, cloud));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildDag)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

void BM_SimulatePlanSample(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(static_cast<int>(state.range(0)));
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), spec.stage(0).num_trials);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  int sample_index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamplePlan(dag, profile, cloud, 1, sample_index++));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulatePlanSample)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

void BM_SimulatePlanEstimate20Samples(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(64);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 64);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulatePlan(dag, profile, cloud, {20, 1}));
  }
}
BENCHMARK(BM_SimulatePlanEstimate20Samples);

// The plain/Observed pair quantifies the observability instrumentation
// overhead (timeline spans + latency histograms on top of the always-on
// counters), which the design budgets at <2% on realistic experiment sizes
// (fixed per-run costs — histogram setup, the final snapshot — amortize as
// the experiment grows, so the 16-trial point runs a little hotter).
void EndToEndExecution(benchmark::State& state, bool observe) {
  const int trials = static_cast<int>(state.range(0));
  const ExperimentSpec spec = MakeSha(trials, 2, 508, 2);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), trials);
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = P38Cloud();
  uint64_t seed = 0;
  for (auto _ : state) {
    ExecutorOptions options;
    options.seed = seed++;
    options.observe = observe;
    benchmark::DoNotOptimize(ExecutePlan(spec, plan, workload, cloud, options));
  }
}

void BM_EndToEndExecution(benchmark::State& state) { EndToEndExecution(state, false); }
BENCHMARK(BM_EndToEndExecution)->Arg(16)->Arg(64);

void BM_EndToEndExecutionObserved(benchmark::State& state) { EndToEndExecution(state, true); }
BENCHMARK(BM_EndToEndExecutionObserved)->Arg(16)->Arg(64);

// --- DES kernel microbenchmarks -------------------------------------------
//
// Three access patterns bracket how the layers above actually drive the
// queue: the executor schedules bursts and drains them (schedule/run), the
// warm pool schedules TTL timers it usually cancels (schedule/cancel), and
// steady-state simulation is a self-rescheduling chain (churn). All captures
// are inline-sized, so the runs double as the allocation-free check.

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  int64_t sink = 0;
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < batch; ++i) {
      queue.ScheduleAt(static_cast<Seconds>(i), [&sink, i] { sink += i; });
    }
    queue.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_EventQueueScheduleCancel(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  std::vector<EventHandle> handles(static_cast<size_t>(batch));
  int64_t sink = 0;
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < batch; ++i) {
      handles[static_cast<size_t>(i)] =
          queue.ScheduleAt(static_cast<Seconds>(i), [&sink] { ++sink; });
    }
    for (int i = 0; i < batch; ++i) {
      queue.Cancel(handles[static_cast<size_t>(i)]);
    }
    benchmark::DoNotOptimize(queue.size());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleCancel)->Arg(1024)->Arg(16384);

void BM_EventQueueChurn(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue queue;
    int remaining = chain;
    // Self-rescheduling chain: each event schedules its successor, the
    // steady state of the executor's iteration loop.
    struct Tick {
      EventQueue* queue;
      int* remaining;
      void operator()() const {
        if (--*(remaining) > 0) {
          queue->ScheduleAt(queue->now() + 1.0, Tick{queue, remaining});
        }
      }
    };
    queue.ScheduleAt(0.0, Tick{&queue, &remaining});
    queue.RunAll();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1024)->Arg(16384);

// --- --json mode: checked-in kernel baseline (BENCH_sim.json) -------------

struct KernelResult {
  std::string name;
  int64_t events = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
};

template <typename Body>
KernelResult TimeKernel(const std::string& name, int64_t events, Body body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
  KernelResult result;
  result.name = name;
  result.events = events;
  result.wall_s = wall.count();
  result.events_per_s = result.wall_s > 0.0 ? static_cast<double>(events) / result.wall_s : 0.0;
  return result;
}

int JsonMain(const std::string& path) {
  // Sized so each bench runs long enough to time stably (~100ms+) but the
  // whole mode stays under a couple of seconds for CI.
  constexpr int kEvents = 2'000'000;
  constexpr int kBatch = 16384;  // bursts mirror the executor's fan-out width

  const int64_t fallbacks_before = EventCallback::HeapConstructions();
  std::vector<KernelResult> results;

  // schedule_run: burst-fill then drain, repeated. Exercises slab alloc,
  // pairing-heap meld, pop, and slot recycling across bursts.
  results.push_back(TimeKernel("schedule_run", kEvents, [] {
    EventQueue queue;
    int64_t sink = 0;
    for (int burst = 0; burst < kEvents / kBatch; ++burst) {
      for (int i = 0; i < kBatch; ++i) {
        queue.ScheduleAt(queue.now() + static_cast<Seconds>(i), [&sink, i] { sink += i; });
      }
      queue.RunAll();
    }
    if (sink < 0) std::abort();  // keep the work observable
  }));

  // schedule_cancel: every event is cancelled before it fires — the warm
  // pool's TTL-timer pattern. Measures handle validation + lazy pruning.
  results.push_back(TimeKernel("schedule_cancel", kEvents, [] {
    EventQueue queue;
    std::vector<EventHandle> handles(kBatch);
    int64_t sink = 0;
    for (int burst = 0; burst < kEvents / kBatch; ++burst) {
      for (int i = 0; i < kBatch; ++i) {
        handles[static_cast<size_t>(i)] =
            queue.ScheduleAt(queue.now() + 1.0 + i, [&sink] { ++sink; });
      }
      for (int i = 0; i < kBatch; ++i) {
        queue.Cancel(handles[static_cast<size_t>(i)]);
      }
      // Drain the tombstones so the slab stays bounded across bursts.
      queue.RunAll();
    }
    if (sink != 0) std::abort();  // every event was cancelled before firing
  }));

  // churn: a single self-rescheduling chain — queue depth stays at 1, so
  // this isolates per-event constant cost (alloc + meld + pop + invoke).
  results.push_back(TimeKernel("churn", kEvents, [] {
    EventQueue queue;
    int remaining = kEvents;
    struct Tick {
      EventQueue* queue;
      int* remaining;
      void operator()() const {
        if (--*(remaining) > 0) {
          queue->ScheduleAt(queue->now() + 1.0, Tick{queue, remaining});
        }
      }
    };
    queue.ScheduleAt(0.0, Tick{&queue, &remaining});
    queue.RunAll();
    if (remaining != 0) std::abort();
  }));

  const int64_t fallbacks = EventCallback::HeapConstructions() - fallbacks_before;

  std::printf("%-16s %12s %9s %13s\n", "bench", "events", "wall", "events/s");
  for (const KernelResult& result : results) {
    std::printf("%-16s %12lld %8.3fs %12.2fM\n", result.name.c_str(),
                static_cast<long long>(result.events), result.wall_s,
                result.events_per_s / 1e6);
  }
  std::printf("callback heap fallbacks: %lld\n", static_cast<long long>(fallbacks));

  if (fallbacks > 0) {
    std::fprintf(stderr, "error: %lld inline-sized callbacks heap-allocated\n",
                 static_cast<long long>(fallbacks));
    return 1;
  }

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(file, "{\n  \"benchmark\": \"event_queue_kernel\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& result = results[i];
    std::fprintf(file,
                 "    {\"bench\": \"%s\", \"events\": %lld, \"wall_s\": %.3f, "
                 "\"events_per_s\": %.0f}%s\n",
                 result.name.c_str(), static_cast<long long>(result.events), result.wall_s,
                 result.events_per_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"callback_heap_fallbacks\": %lld\n}\n",
               static_cast<long long>(fallbacks));
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json requires a path\n");
        return 2;
      }
      return rubberband::JsonMain(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
