// Microbenchmarks for RubberBand's own hot paths: DAG construction and
// Algorithm 1 plan simulation. The planner calls these in its inner loop,
// so their throughput bounds how many candidate plans a search can afford.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dag/builder.h"

namespace rubberband {
namespace {

using bench::P38Cloud;
using bench::ResNet50Profile;

ExperimentSpec SpecForTrials(int trials) { return MakeSha(trials, 4, 508, 2); }

void BM_BuildDag(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(static_cast<int>(state.range(0)));
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), spec.stage(0).num_trials);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildDag(spec, plan, profile, cloud));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildDag)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

void BM_SimulatePlanSample(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(static_cast<int>(state.range(0)));
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), spec.stage(0).num_trials);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  int sample_index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamplePlan(dag, profile, cloud, 1, sample_index++));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulatePlanSample)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

void BM_SimulatePlanEstimate20Samples(benchmark::State& state) {
  const ExperimentSpec spec = SpecForTrials(64);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), 64);
  const ModelProfile profile = ResNet50Profile(4.0, 0.4);
  const CloudProfile cloud = P38Cloud();
  const ExecutionDag dag = BuildDag(spec, plan, profile, cloud);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulatePlan(dag, profile, cloud, {20, 1}));
  }
}
BENCHMARK(BM_SimulatePlanEstimate20Samples);

// The plain/Observed pair quantifies the observability instrumentation
// overhead (timeline spans + latency histograms on top of the always-on
// counters), which the design budgets at <2% on realistic experiment sizes
// (fixed per-run costs — histogram setup, the final snapshot — amortize as
// the experiment grows, so the 16-trial point runs a little hotter).
void EndToEndExecution(benchmark::State& state, bool observe) {
  const int trials = static_cast<int>(state.range(0));
  const ExperimentSpec spec = MakeSha(trials, 2, 508, 2);
  const AllocationPlan plan = AllocationPlan::Uniform(spec.num_stages(), trials);
  const WorkloadSpec workload = ResNet101Cifar10();
  const CloudProfile cloud = P38Cloud();
  uint64_t seed = 0;
  for (auto _ : state) {
    ExecutorOptions options;
    options.seed = seed++;
    options.observe = observe;
    benchmark::DoNotOptimize(ExecutePlan(spec, plan, workload, cloud, options));
  }
}

void BM_EndToEndExecution(benchmark::State& state) { EndToEndExecution(state, false); }
BENCHMARK(BM_EndToEndExecution)->Arg(16)->Arg(64);

void BM_EndToEndExecutionObserved(benchmark::State& state) { EndToEndExecution(state, true); }
BENCHMARK(BM_EndToEndExecutionObserved)->Arg(16)->Arg(64);

}  // namespace
}  // namespace rubberband

BENCHMARK_MAIN();
