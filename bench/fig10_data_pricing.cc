// Figure 10: impact of data-I/O pricing on overall experiment cost, for a
// large dataset (ImageNet, ~150 GB/instance) and a small one (CIFAR-10,
// ~150 MB/instance).
//
// SHA(n=64, r=4, R=508), ResNet-50 batch 512, p3.8xlarge workers; each
// provisioned instance downloads the dataset once from external storage.
// Expected shape: with ImageNet, ingress dominates and the elastic
// advantage vanishes (but never inverts); with CIFAR-10, elastic keeps a
// healthy margin even at $0.16/GB.

#include "bench/bench_util.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(64, 4, 508, 2);
  const Seconds deadline = Minutes(15);
  const double prices_per_gb[] = {0.0, 0.01, 0.02, 0.04, 0.08, 0.16};

  for (const Dataset& dataset : {ImageNet(), Cifar10()}) {
    Heading("Figure 10 (" + dataset.name + ", " + std::to_string(dataset.size_gb) +
            " GB/instance): total cost vs data price");
    std::printf("%-12s %14s %14s %10s\n", "$/GB", "fixed-cluster", "elastic", "gain");
    for (double price : prices_per_gb) {
      const ModelProfile profile = ResNet50Profile(4.0, 2.0, dataset.size_gb);
      CloudProfile cloud = P38Cloud();
      cloud.pricing.data_price_per_gb = Money::FromDollars(price);

      const PlannedJob fixed = PlanStatic({spec, profile, cloud, deadline});
      const PlannedJob elastic = PlanGreedy({spec, profile, cloud, deadline});
      const double gain =
          fixed.estimate.cost_mean.dollars() / elastic.estimate.cost_mean.dollars();
      std::printf("%-12.2f %14s %14s %9.2fx\n", price,
                  fixed.estimate.cost_mean.ToString().c_str(),
                  elastic.estimate.cost_mean.ToString().c_str(), gain);
    }
  }
  std::printf("\n(when ingress dominates spending, elastic reallocation cannot help --\n"
              " but it never does worse than the fixed cluster)\n");
  return 0;
}
