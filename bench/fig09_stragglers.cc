// Figure 9: impact of stragglers on simulated cost under different billing
// regimes — plus the gray-failure extension: what persistent (gray-failed)
// stragglers cost at execution time, and what detection + checkpoint-based
// quarantine buys back.
//
// Part 1 (planning): SHA(n=64, r=4, R=508) over ResNet-50 (batch 512, mean
// per-iteration latency 4 s) on p3.8xlarge; straggler severity is the
// stddev of the training latency distribution, swept 1..10 s. Expected
// shape: per-instance billing is far more expensive than per-function at
// high variance (idle resources held at synchronization barriers).
//
// Part 2 (execution): one fixed SHA job planned fault-free, then executed
// while persistent stragglers are injected at increasing severity (the
// slowdown factor an afflicted instance pays on every iteration), with the
// detect/quarantine/restore loop off vs on, across several seeds. The
// zero-severity mitigation-on row must match the fault-free baseline
// exactly — arming the gray-failure stack costs nothing when nothing is
// gray — and mitigation must win JCT at >=2x severity.
//
//   --json <path>   additionally write part 2 as JSON (BENCH_stragglers.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"

namespace rubberband {
namespace {

constexpr Seconds kDeadline = 1500.0;
constexpr int kSeeds = 5;
constexpr double kStragglerRate = 0.3;

void PlanningTable() {
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(64, 4, 508, 2);
  const Seconds deadline = Minutes(20);

  Heading("Figure 9: simulated cost vs straggler severity (sigma of 4 s mean iteration)");
  std::printf("%-8s | %-25s | %-25s\n", "", "(a) fixed-cluster policy", "(b) elastic policy");
  std::printf("%-8s | %12s %12s | %12s %12s\n", "sigma", "per-inst", "per-func", "per-inst",
              "per-func");

  for (int sigma = 1; sigma <= 10; ++sigma) {
    const ModelProfile profile = ResNet50Profile(4.0, sigma);
    CloudProfile per_instance = P38Cloud(0.0, 0.0);
    CloudProfile per_function = per_instance;
    per_function.pricing.billing = BillingModel::kPerFunction;

    std::printf("%-8d |", sigma);
    using PlannerFn = PlannedJob (*)(const PlannerInputs&, const PlannerOptions&);
    constexpr PlannerFn kStatic = &PlanStatic;
    constexpr PlannerFn kGreedy = &PlanGreedy;
    for (PlannerFn planner : {kStatic, kGreedy}) {
      // Plan under the per-instance model (the provider the job targets),
      // then price the same plan under both billing regimes.
      const PlannedJob job = planner({spec, profile, per_instance, deadline}, {});
      PlannerOptions options;
      const PlanEstimate inst = EstimatePlan({spec, profile, per_instance, deadline},
                                             job.plan, options);
      const PlanEstimate func = EstimatePlan({spec, profile, per_function, deadline},
                                             job.plan, options);
      std::printf(" %12s %12s %s", inst.cost_mean.ToString().c_str(),
                  func.cost_mean.ToString().c_str(), planner == kStatic ? "|" : "");
    }
    std::printf("\n");
  }
  std::printf("\n(per-instance billing pays for straggler-idle GPUs at SYNC barriers;\n"
              " per-function releases them the moment each trial finishes)\n");
}

struct Row {
  std::string label;
  double factor = 0.0;  // persistent slowdown factor (0 = no injection)
  bool mitigate = false;
  int deadline_hits = 0;
  int runs = 0;
  double mean_jct = 0.0;
  double mean_cost = 0.0;
  double mean_injected = 0.0;
  double mean_detected = 0.0;
  double mean_quarantined = 0.0;
  double mean_false_positives = 0.0;
  double mean_mitigation_s = 0.0;
};

Row Sweep(const std::string& label, const ExperimentSpec& spec, const AllocationPlan& plan,
          const WorkloadSpec& workload, double factor, bool mitigate, uint64_t seed_base) {
  Row row;
  row.label = label;
  row.factor = factor;
  row.mitigate = mitigate;
  row.runs = kSeeds;
  for (int seed = 0; seed < kSeeds; ++seed) {
    CloudProfile cloud = bench::P38Cloud();
    if (factor > 0.0) {
      cloud.fault.straggler_rate = kStragglerRate;
      cloud.fault.straggler_factor_min = factor;
      cloud.fault.straggler_factor_max = factor;
    }
    ExecutorOptions options;
    options.seed = seed_base + static_cast<uint64_t>(seed);
    options.straggler.detect = mitigate;
    options.straggler.mitigate = mitigate;
    const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
    row.mean_jct += report.jct / kSeeds;
    row.mean_cost += report.cost.Total().dollars() / kSeeds;
    row.mean_injected += static_cast<double>(report.stragglers_injected) / kSeeds;
    row.mean_detected += static_cast<double>(report.stragglers_detected) / kSeeds;
    row.mean_quarantined += static_cast<double>(report.stragglers_quarantined) / kSeeds;
    row.mean_false_positives += static_cast<double>(report.straggler_false_positives) / kSeeds;
    row.mean_mitigation_s += report.straggler_mitigation_seconds / kSeeds;
    if (report.jct <= kDeadline) {
      ++row.deadline_hits;
    }
  }
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file,
               "{\n  \"benchmark\": \"straggler_sweep\",\n  \"deadline_s\": %.1f,\n"
               "  \"straggler_rate\": %.2f,\n  \"results\": [\n",
               kDeadline, kStragglerRate);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"label\": \"%s\", \"factor\": %.1f, \"mitigate\": %s, "
                 "\"deadline_hits\": %d, \"runs\": %d, "
                 "\"mean_jct_s\": %.3f, \"mean_cost_usd\": %.4f, "
                 "\"mean_injected\": %.2f, \"mean_detected\": %.2f, "
                 "\"mean_quarantined\": %.2f, \"mean_false_positives\": %.2f, "
                 "\"mean_mitigation_s\": %.1f}%s\n",
                 row.label.c_str(), row.factor, row.mitigate ? "true" : "false",
                 row.deadline_hits, row.runs, row.mean_jct, row.mean_cost, row.mean_injected,
                 row.mean_detected, row.mean_quarantined, row.mean_false_positives,
                 row.mean_mitigation_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int ExecutionSweep(const Flags& flags) {
  // Base seed for the per-level seed loop (seeds seed..seed+kSeeds-1); the
  // default reproduces the checked-in BENCH_stragglers.json exactly.
  const uint64_t seed_base = static_cast<uint64_t>(flags.GetInt64("seed", 1));
  // Large enough that the fault-free greedy plan is multi-instance in every
  // stage ([16, 16, 16] on 4-GPU p3.8xlarge = 4 instances): the detector
  // needs peers for a baseline, and a single-instance cluster would make
  // the whole sweep trivially detection-free.
  const ExperimentSpec spec = MakeSha(/*num_trials=*/16, /*min_iters=*/4, /*max_iters=*/28,
                                      /*reduction_factor=*/2);
  const WorkloadSpec workload = ResNet101Cifar10();
  ProfilerOptions profiler_options;
  profiler_options.seed = 1;
  const ModelProfile profile = ProfileWorkload(workload, profiler_options).profile;
  const PlannedJob job = PlanGreedy({spec, profile, bench::P38Cloud(), kDeadline});

  bench::Heading("gray failures: persistent-straggler severity vs detection + quarantine");
  std::printf("plan %s, deadline %s, straggler rate %.2f, %d seeds per level\n\n",
              job.plan.ToString().c_str(), FormatDuration(kDeadline).c_str(), kStragglerRate,
              kSeeds);
  std::printf("%10s %7s %9s %9s %10s %9s %9s %9s %6s %7s %8s\n", "level", "factor", "mitigate",
              "deadline", "mean JCT", "mean $", "injected", "detected", "quar", "false+",
              "mit.cost");

  std::vector<Row> rows;
  rows.push_back(Sweep("baseline", spec, job.plan, workload, /*factor=*/0.0, false, seed_base));
  rows.push_back(Sweep("none", spec, job.plan, workload, /*factor=*/0.0, true, seed_base));
  for (double factor : {1.5, 2.0, 3.0, 4.0}) {
    const std::string label = "factor-" + std::to_string(factor).substr(0, 3);
    rows.push_back(Sweep(label, spec, job.plan, workload, factor, false, seed_base));
    rows.push_back(Sweep(label, spec, job.plan, workload, factor, true, seed_base));
  }
  for (const Row& row : rows) {
    std::printf("%10s %7.1f %9s %6d/%-2d %10s %9.2f %9.1f %9.1f %6.1f %7.1f %7.0fs\n",
                row.label.c_str(), row.factor, row.mitigate ? "on" : "off", row.deadline_hits,
                row.runs, FormatDuration(row.mean_jct).c_str(), row.mean_cost, row.mean_injected,
                row.mean_detected, row.mean_quarantined, row.mean_false_positives,
                row.mean_mitigation_s);
  }

  // Hard check 1: arming the gray-failure stack is free when no straggler
  // exists — the zero-severity mitigation-on row must be bit-identical to
  // the fault-free baseline.
  if (rows[0].mean_jct != rows[1].mean_jct || rows[0].mean_cost != rows[1].mean_cost) {
    std::fprintf(stderr,
                 "error: zero-straggler mitigation-on row diverged from the baseline "
                 "(the gray-failure stack is supposed to be free when disabled)\n");
    return 1;
  }
  std::printf("\nzero-straggler mitigation-on row matches the baseline exactly\n");

  // Hard check 2: at >=2x severity, mitigation must beat no-mitigation on
  // mean JCT and do no worse on deadline hits.
  for (size_t i = 2; i + 1 < rows.size(); i += 2) {
    const Row& off = rows[i];
    const Row& on = rows[i + 1];
    if (off.factor < 2.0) {
      continue;
    }
    if (on.mean_jct >= off.mean_jct || on.deadline_hits < off.deadline_hits) {
      std::fprintf(stderr,
                   "error: mitigation lost at factor %.1f (JCT %.1fs vs %.1fs, "
                   "deadline %d vs %d)\n",
                   off.factor, on.mean_jct, off.mean_jct, on.deadline_hits, off.deadline_hits);
      return 1;
    }
  }
  std::printf("mitigation beats no-mitigation at every severity >= 2x\n");

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, rows)) {
      return 1;
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  PlanningTable();
  std::printf("\n");
  return ExecutionSweep(flags);
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
