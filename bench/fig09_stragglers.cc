// Figure 9: impact of stragglers on simulated cost under different billing
// regimes.
//
// SHA(n=64, r=4, R=508) over ResNet-50 (batch 512, mean per-iteration
// latency 4 s) on p3.8xlarge; straggler severity is the stddev of the
// training latency distribution, swept 1..10 s; instance initialization
// latency 0. Panel (a) fixed-cluster policy, panel (b) elastic policy.
// Expected shape: per-instance billing is far more expensive than
// per-function at high variance (idle resources held at synchronization
// barriers), regardless of policy.

#include "bench/bench_util.h"

int main() {
  using namespace rubberband;
  using namespace rubberband::bench;

  const ExperimentSpec spec = MakeSha(64, 4, 508, 2);
  const Seconds deadline = Minutes(20);

  Heading("Figure 9: simulated cost vs straggler severity (sigma of 4 s mean iteration)");
  std::printf("%-8s | %-25s | %-25s\n", "", "(a) fixed-cluster policy", "(b) elastic policy");
  std::printf("%-8s | %12s %12s | %12s %12s\n", "sigma", "per-inst", "per-func", "per-inst",
              "per-func");

  for (int sigma = 1; sigma <= 10; ++sigma) {
    const ModelProfile profile = ResNet50Profile(4.0, sigma);
    CloudProfile per_instance = P38Cloud(0.0, 0.0);
    CloudProfile per_function = per_instance;
    per_function.pricing.billing = BillingModel::kPerFunction;

    std::printf("%-8d |", sigma);
    using PlannerFn = PlannedJob (*)(const PlannerInputs&, const PlannerOptions&);
    constexpr PlannerFn kStatic = &PlanStatic;
    constexpr PlannerFn kGreedy = &PlanGreedy;
    for (PlannerFn planner : {kStatic, kGreedy}) {
      // Plan under the per-instance model (the provider the job targets),
      // then price the same plan under both billing regimes.
      const PlannedJob job = planner({spec, profile, per_instance, deadline}, {});
      PlannerOptions options;
      const PlanEstimate inst = EstimatePlan({spec, profile, per_instance, deadline},
                                             job.plan, options);
      const PlanEstimate func = EstimatePlan({spec, profile, per_function, deadline},
                                             job.plan, options);
      std::printf(" %12s %12s %s", inst.cost_mean.ToString().c_str(),
                  func.cost_mean.ToString().c_str(), planner == kStatic ? "|" : "");
    }
    std::printf("\n");
  }
  std::printf("\n(per-instance billing pays for straggler-idle GPUs at SYNC barriers;\n"
              " per-function releases them the moment each trial finishes)\n");
  return 0;
}
