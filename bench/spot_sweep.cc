// Spot sweep: cost, JCT and deadline-hit-rate of the spot-surviving
// executor across price-volatility regimes.
//
// One fixed SHA job is planned on-demand, then executed on a spot market of
// increasing hostility — price volatility, price-coupled hazard, and
// reclamation storms move together from calm to wild — across several seeds
// per regime. Two anchor rows frame the sweep: the "on-demand" baseline
// (spot disabled) and the "self-check" row, which runs the full market
// plumbing with every knob zeroed (no discount, no hazard, no volatility,
// no storms, no caps) and must match the baseline exactly — the market
// layer is supposed to be free when it is inert.
//
//   --json <path>   additionally write the table as JSON (BENCH_spot.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"

namespace rubberband {
namespace {

constexpr Seconds kDeadline = 1800.0;
constexpr int kSeeds = 3;

struct Regime {
  const char* label;
  bool spot_enabled;
  double discount;
  Seconds mttp;
  double volatility;
  double hazard_coupling;
  Seconds storm_interval;
};

struct Row {
  std::string label;
  int deadline_hits = 0;
  int runs = 0;
  double mean_jct = 0.0;
  double mean_cost = 0.0;
  double mean_preemptions = 0.0;
  double mean_warnings = 0.0;
  double mean_eager = 0.0;
  double mean_fallbacks = 0.0;
  double mean_rework_s = 0.0;
  double mean_savings = 0.0;
};

Row Sweep(const ExperimentSpec& spec, const AllocationPlan& plan, const WorkloadSpec& workload,
          const ModelProfile& profile, const Regime& regime, uint64_t seed_base) {
  Row row;
  row.label = regime.label;
  row.runs = kSeeds;
  for (int seed = 0; seed < kSeeds; ++seed) {
    CloudProfile cloud = bench::P38Cloud();
    cloud.spot.enabled = regime.spot_enabled;
    cloud.spot.discount = regime.discount;
    cloud.spot.mean_time_to_preemption = regime.mttp;
    cloud.spot.volatility = regime.volatility;
    cloud.spot.hazard_coupling = regime.hazard_coupling;
    cloud.spot.storm_mean_interval_s = regime.storm_interval;
    ExecutorOptions options;
    options.seed = seed_base + static_cast<uint64_t>(seed);
    if (regime.spot_enabled) {
      // The risk-aware replanner prices expected rework into stage-boundary
      // replans; inert markets (the self-check) leave it with nothing to do.
      options.replan.enabled = true;
      options.replan.deadline = kDeadline;
      options.replan.model = profile;
    }
    const ExecutionReport report = ExecutePlan(spec, plan, workload, cloud, options);
    row.mean_jct += report.jct / kSeeds;
    row.mean_cost += report.cost.Total().dollars() / kSeeds;
    row.mean_preemptions += static_cast<double>(report.preemptions) / kSeeds;
    row.mean_warnings += static_cast<double>(report.preemption_warnings) / kSeeds;
    row.mean_eager += static_cast<double>(report.eager_checkpoints) / kSeeds;
    row.mean_fallbacks += static_cast<double>(report.market_fallbacks) / kSeeds;
    row.mean_rework_s += report.spot_rework_seconds / kSeeds;
    row.mean_savings += report.spot_savings.dollars() / kSeeds;
    if (report.jct <= kDeadline) {
      ++row.deadline_hits;
    }
  }
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows, double baseline_cost,
               double baseline_hit_rate) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(file,
               "{\n  \"benchmark\": \"spot_sweep\",\n  \"deadline_s\": %.1f,\n"
               "  \"results\": [\n",
               kDeadline);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double cost_reduction =
        baseline_cost > 0.0 ? 100.0 * (1.0 - row.mean_cost / baseline_cost) : 0.0;
    const double hit_points =
        100.0 * (static_cast<double>(row.deadline_hits) / row.runs) - baseline_hit_rate;
    std::fprintf(file,
                 "    {\"label\": \"%s\", \"deadline_hits\": %d, \"runs\": %d, "
                 "\"mean_jct_s\": %.3f, \"mean_cost_usd\": %.4f, "
                 "\"cost_reduction_pct\": %.1f, \"deadline_hit_delta_points\": %.1f, "
                 "\"mean_preemptions\": %.2f, \"mean_warnings\": %.2f, "
                 "\"mean_eager_checkpoints\": %.2f, \"mean_market_fallbacks\": %.2f, "
                 "\"mean_rework_s\": %.1f, \"mean_savings_usd\": %.4f}%s\n",
                 row.label.c_str(), row.deadline_hits, row.runs, row.mean_jct, row.mean_cost,
                 cost_reduction, hit_points, row.mean_preemptions, row.mean_warnings,
                 row.mean_eager, row.mean_fallbacks, row.mean_rework_s, row.mean_savings,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc - 1, argv + 1);
  // Base seed for the per-regime seed loop (seeds seed..seed+kSeeds-1); the
  // default reproduces the checked-in BENCH_spot.json exactly.
  const uint64_t seed_base = static_cast<uint64_t>(flags.GetInt64("seed", 1));

  const ExperimentSpec spec = MakeSha(/*num_trials=*/8, /*min_iters=*/2, /*max_iters=*/14,
                                      /*reduction_factor=*/2);
  const WorkloadSpec workload = ResNet101Cifar10();
  ProfilerOptions profiler_options;
  profiler_options.seed = 1;
  const ModelProfile profile = ProfileWorkload(workload, profiler_options).profile;
  const PlannedJob job = PlanGreedy({spec, profile, bench::P38Cloud(), kDeadline});

  bench::Heading("spot sweep: spot-surviving executor vs market hostility");
  std::printf("plan %s, deadline %s, %d seeds per regime\n\n", job.plan.ToString().c_str(),
              FormatDuration(kDeadline).c_str(), kSeeds);

  // The self-check regime keeps every market knob inert: same price as
  // on-demand, no hazard, flat trace, no storms, no caps.
  const Regime baseline{"on-demand", false, 1.0, 0.0, 0.0, 0.0, 0.0};
  const Regime self_check{"self-check", true, 1.0, 0.0, 0.0, 0.0, 0.0};
  const Regime regimes[] = {
      {"calm", true, 0.3, 4.0 * 3600.0, 0.1, 0.0, 0.0},
      {"moderate", true, 0.3, 2.0 * 3600.0, 0.4, 1.0, 0.0},
      {"wild", true, 0.3, 1200.0, 0.8, 2.0, 900.0},
  };

  std::vector<Row> rows;
  rows.push_back(Sweep(spec, job.plan, workload, profile, baseline, seed_base));
  rows.push_back(Sweep(spec, job.plan, workload, profile, self_check, seed_base));
  for (const Regime& regime : regimes) {
    rows.push_back(Sweep(spec, job.plan, workload, profile, regime, seed_base));
  }

  const double baseline_cost = rows[0].mean_cost;
  const double baseline_hit_rate =
      100.0 * (static_cast<double>(rows[0].deadline_hits) / rows[0].runs);
  std::printf("%10s %9s %10s %9s %8s %9s %8s %9s %9s %9s\n", "regime", "deadline", "mean JCT",
              "mean $", "vs od", "preempt", "warn", "eager", "fallback", "rework");
  for (const Row& row : rows) {
    const double cost_reduction =
        baseline_cost > 0.0 ? 100.0 * (1.0 - row.mean_cost / baseline_cost) : 0.0;
    std::printf("%10s %6d/%-2d %10s %9.2f %7.1f%% %9.1f %8.1f %9.1f %9.1f %8.0fs\n",
                row.label.c_str(), row.deadline_hits, row.runs,
                FormatDuration(row.mean_jct).c_str(), row.mean_cost, cost_reduction,
                row.mean_preemptions, row.mean_warnings, row.mean_eager, row.mean_fallbacks,
                row.mean_rework_s);
  }

  // Hard self-checks: the inert-market row must replay the on-demand
  // baseline exactly, and the moderate regime must deliver the headline
  // trade — a big cost cut without giving up the deadline.
  if (rows[0].mean_jct != rows[1].mean_jct || rows[0].mean_cost != rows[1].mean_cost) {
    std::fprintf(stderr,
                 "error: inert-market self-check diverged from the on-demand baseline "
                 "(the market layer is supposed to be free when disabled)\n");
    return 1;
  }
  std::printf("\ninert-market self-check matches the on-demand baseline exactly\n");
  const Row& moderate = rows[3];
  const double moderate_reduction = 100.0 * (1.0 - moderate.mean_cost / baseline_cost);
  const double moderate_hit_rate =
      100.0 * (static_cast<double>(moderate.deadline_hits) / moderate.runs);
  if (moderate_reduction < 25.0) {
    std::fprintf(stderr, "error: moderate-volatility cost reduction %.1f%% < 25%%\n",
                 moderate_reduction);
    return 1;
  }
  if (moderate_hit_rate + 5.0 < baseline_hit_rate) {
    std::fprintf(stderr, "error: moderate-volatility deadline hit rate %.0f%% more than "
                         "5 points under the baseline's %.0f%%\n",
                 moderate_hit_rate, baseline_hit_rate);
    return 1;
  }
  std::printf("moderate volatility: %.1f%% cheaper than on-demand, deadline hit rate "
              "%.0f%% (baseline %.0f%%)\n",
              moderate_reduction, moderate_hit_rate, baseline_hit_rate);

  if (flags.Has("json")) {
    const std::string path = flags.GetString("json", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --json requires a path\n");
      return 2;
    }
    if (!WriteJson(path, rows, baseline_cost, baseline_hit_rate)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rubberband

int main(int argc, char** argv) { return rubberband::Main(argc, argv); }
