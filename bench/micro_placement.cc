// Microbenchmarks for the placement controller: steady-state re-placement,
// displacement-heavy churn, and scale-down bin-packing.

#include <benchmark/benchmark.h>

#include <map>

#include "src/common/rng.h"
#include "src/placement/controller.h"

namespace rubberband {
namespace {

void BM_PlaceFreshStage(benchmark::State& state) {
  const int trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PlacementController controller(4);
    for (int n = 0; n < trials; ++n) {
      controller.AddNode(n);
    }
    std::map<TrialId, int> allocations;
    for (int t = 0; t < trials; ++t) {
      allocations[t] = 4;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(controller.Place(allocations));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlaceFreshStage)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_PlaceIdempotent(benchmark::State& state) {
  PlacementController controller(4);
  std::map<TrialId, int> allocations;
  for (int n = 0; n < 64; ++n) {
    controller.AddNode(n);
    allocations[n] = 4;
  }
  controller.Place(allocations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.Place(allocations));
  }
}
BENCHMARK(BM_PlaceIdempotent);

void BM_PlaceRandomChurn(benchmark::State& state) {
  PlacementController controller(4);
  for (int n = 0; n < 32; ++n) {
    controller.AddNode(n);
  }
  Rng rng(7);
  std::map<TrialId, int> allocations;
  for (auto _ : state) {
    const TrialId trial = static_cast<TrialId>(rng.UniformInt(0, 31));
    if (rng.UniformInt(0, 3) == 0) {
      allocations.erase(trial);
    } else {
      allocations[trial] = static_cast<int>(rng.UniformInt(1, 8));
    }
    benchmark::DoNotOptimize(controller.Place(allocations));
  }
}
BENCHMARK(BM_PlaceRandomChurn);

void BM_ScaleDownRepack(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PlacementController controller(4);
    std::map<TrialId, int> wide;
    for (int n = 0; n < 64; ++n) {
      controller.AddNode(n);
      wide[n] = 4;
    }
    controller.Place(wide);
    // Shrink to a quarter of the trials at double the allocation: the
    // executor's stage-boundary repack.
    std::map<TrialId, int> narrow;
    for (int t = 0; t < 16; ++t) {
      narrow[t] = 8;
    }
    state.ResumeTiming();
    controller.Place({});
    benchmark::DoNotOptimize(controller.Place(narrow));
  }
}
BENCHMARK(BM_ScaleDownRepack);

}  // namespace
}  // namespace rubberband

BENCHMARK_MAIN();
